// Package alias exercises persistcheck's alias-aware slice taint: with
// the points-to graph behind nvmSlices, a write through a *derived*
// slice — a reslice, a second variable, a parameter bound to
// Bytes-backed memory at a call site — dirties the fact exactly like a
// write through the original Heap.Bytes view. The v2 engine tainted
// only variables assigned directly from Heap.Bytes and proved nothing
// about these.
package alias

import "fix/nvm"

var src = make([]byte, 16)

// derivedDirty writes through a twice-derived alias and publishes.
func derivedDirty(h *nvm.Heap, p nvm.PPtr) {
	b := h.Bytes(p, 16)
	c := b[2:10]
	d := c
	copy(d, src)
	h.SetRoot(0, p) // want `Heap\.SetRoot publishes while the copy into Heap\.Bytes at .* is not persisted`
}

// derivedClean persists through the original view what was written
// through the alias — alias-awareness in both directions.
func derivedClean(h *nvm.Heap, p nvm.PPtr) {
	b := h.Bytes(p, 16)
	c := b[2:10]
	d := c
	copy(d, src)
	h.PersistBytes(b)
	h.SetRoot(0, p)
}

// fillBuf writes through a slice parameter: whether that dirties NVM
// depends on what callers pass, which only the points-to graph knows.
// Its obligation shifts to the in-package callers.
func fillBuf(buf []byte) {
	copy(buf, src)
}

// paramDirty passes Bytes-backed memory into the helper and publishes
// without a persist.
func paramDirty(h *nvm.Heap, p nvm.PPtr) {
	b := h.Bytes(p, 16)
	fillBuf(b)
	h.SetRoot(0, p) // want `Heap\.SetRoot publishes while the call of fillBuf at .* is not persisted`
}

// paramClean persists after the helper's write.
func paramClean(h *nvm.Heap, p nvm.PPtr) {
	b := h.Bytes(p, 16)
	fillBuf(b)
	h.PersistBytes(b)
	h.SetRoot(0, p)
}

// fillVolatile is shaped like fillBuf but no caller ever passes it NVM
// memory; the summary is context-insensitive, so sharing fillBuf would
// smear paramDirty's taint over volatile callers too.
func fillVolatile(buf []byte) {
	copy(buf, src)
}

// volatileStays proves the taint does not leak: writing a volatile
// buffer through the same shape of helper stays silent.
func volatileStays(h *nvm.Heap, p nvm.PPtr) {
	buf := make([]byte, 16)
	fillVolatile(buf)
	h.SetRoot(0, p)
}
