package vec

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestVolatileAppendGet(t *testing.T) {
	v := NewVolatile(2)
	const n = 10000
	for i := uint64(0); i < n; i++ {
		idx, err := v.Append(i * 2)
		if err != nil {
			t.Fatal(err)
		}
		if idx != i {
			t.Fatalf("index %d, want %d", idx, i)
		}
	}
	if v.Len() != n {
		t.Fatalf("Len = %d", v.Len())
	}
	for i := uint64(0); i < n; i++ {
		if v.Get(i) != i*2 {
			t.Fatalf("Get(%d) = %d", i, v.Get(i))
		}
	}
}

func TestVolatileAppendN(t *testing.T) {
	v := NewVolatile(2)
	batch := make([]uint64, 777)
	for i := range batch {
		batch[i] = uint64(i)
	}
	first, err := v.AppendN(batch)
	if err != nil || first != 0 {
		t.Fatalf("first=%d err=%v", first, err)
	}
	first, _ = v.AppendN([]uint64{9, 8})
	if first != 777 || v.Len() != 779 {
		t.Fatalf("first=%d len=%d", first, v.Len())
	}
	if v.Get(777) != 9 || v.Get(778) != 8 {
		t.Fatal("second batch corrupted")
	}
}

func TestVolatileSetScan(t *testing.T) {
	v := NewVolatile(3)
	for i := 0; i < 20; i++ {
		v.Append(1)
	}
	v.Set(5, 100)
	v.SetNoPersist(6, 200)
	v.PersistAt(6)
	var sum uint64
	v.Scan(func(_, val uint64) bool { sum += val; return true })
	if sum != 18+300 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestVolatileOutOfRange(t *testing.T) {
	v := NewVolatile(3)
	v.Append(1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	v.Get(1)
}

func TestVolatileConcurrentReadersWithWriter(t *testing.T) {
	v := NewVolatile(4)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				n := v.Len()
				for i := uint64(0); i < n; i++ {
					if got := v.Get(i); got != i {
						t.Errorf("Get(%d) = %d during concurrent append", i, got)
						return
					}
				}
			}
		}()
	}
	for i := uint64(0); i < 50000; i++ {
		v.Append(i)
	}
	close(done)
	wg.Wait()
}

func TestVolatileMatchesSliceProperty(t *testing.T) {
	f := func(vals []uint64) bool {
		v := NewVolatile(2)
		for _, x := range vals {
			v.Append(x)
		}
		if v.Len() != uint64(len(vals)) {
			return false
		}
		ok := true
		v.Scan(func(i, x uint64) bool {
			if x != vals[i] {
				ok = false
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
