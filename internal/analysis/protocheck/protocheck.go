// Package protocheck verifies the two-phase-commit barrier protocol
// whole-program: Prepare persisted on every participant, then a single
// Decide record persisted (and drained) at the coordinator, then
// CommitPrepared/Forget only after the decision is durable. Presumed
// abort means nothing commit-durable may exist before Decide, and a
// prepared participant may never be aborted once a decision is
// recorded.
//
// The analyzer recognizes protocol roles structurally, not by repo
// type names: a participant is any type whose method set has both
// Prepare and CommitPrepared, a coordinator any type with both Decide
// and Forget. Protocol events propagate transitively through the
// whole-program resolved callgraph (summary.Graph over the points-to
// layer), so a driver that prepares through a helper in another
// package is still checked.
//
// Two checks run:
//
//  1. Driver ordering. A function is a 2PC driver when it contains a
//     prepare-only call site and a separate decide/finish site — the
//     shape of a coordinator loop, as opposed to a workload helper
//     whose single Commit call carries the whole protocol. Every path
//     through a driver is interpreted against the phase machine
//     (init → prepared → decided → finished); reordered, missing and
//     conditionally-skipped barriers are findings. Paths on which the
//     coordinator is statically known to be nil (the ModeLog
//     configuration, which is visibility- but not crash-atomic) are
//     exempt from the decision-barrier obligations.
//
//  2. Decide persist schedule. The body of every coordinator Decide
//     method must persist each decision word before dirtying the next
//     (the record must never tear), persist every store before the
//     success return, and drain after the last persist so the decision
//     has device-level durability before any participant finishes.
//     Calls to helpers that transitively persist (the cross-package
//     persist summary) count as barriers.
package protocheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"hyrisenv/internal/analysis"
	"hyrisenv/internal/analysis/summary"
)

var Analyzer = &analysis.ProgramAnalyzer{
	Name: "protocheck",
	Doc:  "whole-program 2PC barrier protocol: prepare before decide, decide durable before finish/forget, no aborts after the decision",
	Run:  run,
}

// Protocol events, closed transitively over the callgraph.
const (
	evPrepare uint64 = 1 << iota
	evDecide
	evFinish // CommitPrepared
	evAbort  // AbortPrepared
	evForget
)

// primitive classifies what fn itself does in the protocol, by method
// name and receiver shape. It must not require a body: cross-package
// callees may be known only from export data.
func primitive(fn *types.Func) uint64 {
	if fn == nil {
		return 0
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return 0
	}
	t := sig.Recv().Type()
	switch fn.Name() {
	case "Prepare":
		if summary.HasMethods(t, "Prepare", "CommitPrepared") {
			return evPrepare
		}
	case "CommitPrepared":
		if summary.HasMethods(t, "Prepare", "CommitPrepared") {
			return evFinish
		}
	case "AbortPrepared":
		if summary.HasMethods(t, "Prepare", "CommitPrepared") {
			return evAbort
		}
	case "Decide":
		if summary.HasMethods(t, "Decide", "Forget") {
			return evDecide
		}
	case "Forget":
		if summary.HasMethods(t, "Decide", "Forget") {
			return evForget
		}
	}
	return 0
}

func run(pass *analysis.ProgramPass) error {
	g := summary.Graph(pass.Prog)
	eff := g.Close(primitive)
	pe := g.PersistEffects()

	c := &checker{pass: pass, g: g, eff: eff, pe: pe, reported: map[string]bool{}}
	for _, f := range pass.Prog.Funcs() {
		if isDecideMethod(f.Obj) {
			c.checkDecideBody(f)
		}
		if c.isDriver(f) {
			c.checkDriver(f)
		}
	}
	return nil
}

type checker struct {
	pass     *analysis.ProgramPass
	g        *summary.Global
	eff      map[string]uint64
	pe       map[string]uint64
	reported map[string]bool
}

// report deduplicates: the loop re-walk and the state-set structure can
// visit one call several times.
func (c *checker) report(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%v\x00%s", pos, msg)
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.pass.Reportf(pos, "%s", msg)
}

// siteEvents returns the transitive protocol events of one call site:
// the union, over every resolved callee, of what the callee is and what
// its body (when in the program) eventually does.
func (c *checker) siteEvents(pkg *analysis.Package, call *ast.CallExpr) uint64 {
	var ev uint64
	for _, fn := range c.g.CalleesAt(pkg, call) {
		ev |= primitive(fn) | c.eff[fn.FullName()]
	}
	return ev
}

// ---------------------------------------------------------------------------
// Check 1: driver ordering.

// Phases of the driver state machine.
const (
	phInit uint8 = iota
	phPrepared
	phDecided
	phFinished
)

// Coordinator-nil facts, tracked per path so the ModeLog configuration
// (no coordinator, no crash-atomicity obligation) is exempt.
const (
	coUnknown uint8 = iota
	coNil
	coNotNil
)

type dstate struct {
	ph uint8
	co uint8
}

// isDriver reports whether f orchestrates the protocol itself: it has a
// call site that prepares without deciding or finishing, and a separate
// site that decides or finishes without preparing. A workload function
// whose single Commit call transitively carries every event matches
// neither shape and is not a driver.
func (c *checker) isDriver(f *analysis.ProgFunc) bool {
	hasPrepare, hasResolve := false, false
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		ev := c.siteEvents(f.Pkg, call)
		if ev&evPrepare != 0 && ev&(evDecide|evFinish) == 0 {
			hasPrepare = true
		}
		if ev&(evDecide|evFinish) != 0 && ev&evPrepare == 0 {
			hasResolve = true
		}
		return true
	})
	return hasPrepare && hasResolve
}

func (c *checker) checkDriver(f *analysis.ProgFunc) {
	w := &pathWalker[dstate]{
		info: f.Pkg.Info,
		apply: func(call *ast.CallExpr, in stateSet[dstate]) stateSet[dstate] {
			return c.applyDriverCall(f, call, in)
		},
		isEvent: func(call *ast.CallExpr) bool {
			return c.siteEvents(f.Pkg, call) != 0
		},
		refine: func(cond ast.Expr, then bool, in stateSet[dstate]) stateSet[dstate] {
			return refineCoord(f.Pkg.Info, cond, then, in)
		},
		atReturn: func(ret *ast.ReturnStmt, in stateSet[dstate]) {
			// Only success-shaped returns (no results, or a literal nil
			// error) promise the caller a committed transaction; error
			// returns hand the prepared state back to the caller's own
			// failure handling.
			pos := f.Decl.End()
			if ret != nil {
				pos = ret.Pos()
				if len(ret.Results) > 0 && !isNil(ret.Results[len(ret.Results)-1]) {
					return
				}
			}
			for s := range in {
				if s.ph == phPrepared && s.co != coNil {
					c.report(pos, "2PC driver returns with participants prepared but no decision recorded or abort — a crash here leaks prepared state that recovery resolves to abort, while the caller believes the commit succeeded")
					break
				}
			}
		},
	}
	w.walkBody(f.Decl.Body, stateSet[dstate]{{ph: phInit, co: coUnknown}: true})
}

func (c *checker) applyDriverCall(f *analysis.ProgFunc, call *ast.CallExpr, in stateSet[dstate]) stateSet[dstate] {
	ev := c.siteEvents(f.Pkg, call)
	if ev == 0 {
		return in
	}
	any := func(pred func(dstate) bool) bool {
		for s := range in {
			if pred(s) {
				return true
			}
		}
		return false
	}
	all := func(pred func(dstate) bool) bool {
		for s := range in {
			if !pred(s) {
				return false
			}
		}
		return len(in) > 0
	}

	if ev&evPrepare != 0 && any(func(s dstate) bool { return s.ph >= phDecided }) {
		c.report(call.Pos(), "participant prepared after the commit decision was recorded — prepare barriers must all precede Decide")
	}
	if ev&evDecide != 0 && all(func(s dstate) bool { return s.ph == phInit }) {
		c.report(call.Pos(), "commit decision recorded before any participant prepared — a crash after Decide would redo the commit against unprepared participants")
	}
	if ev&evFinish != 0 && any(func(s dstate) bool { return s.ph < phDecided && s.co != coNil }) {
		c.report(call.Pos(), "participant finished before the commit decision is durable — a crash between this finish and Decide commits one shard and presumed-aborts the rest")
	}
	if ev&evAbort != 0 && any(func(s dstate) bool { return s.ph >= phDecided }) {
		c.report(call.Pos(), "prepared participant aborted after the commit decision was recorded — recovery would redo a commit the abort already undid")
	}
	if ev&evForget != 0 && len(in) > 0 && all(func(s dstate) bool { return s.ph < phFinished }) {
		c.report(call.Pos(), "decision record forgotten before every participant finished — a crash now leaves prepared contexts whose gtid recovery can no longer resolve")
	}

	out := stateSet[dstate]{}
	for s := range in {
		ns := s
		if ev&evAbort != 0 {
			ns.ph = phInit
		}
		if ev&evPrepare != 0 && ns.ph < phPrepared {
			ns.ph = phPrepared
		}
		if ev&evDecide != 0 && ns.ph < phDecided {
			ns.ph = phDecided
		}
		if ev&evFinish != 0 && ns.ph < phFinished {
			ns.ph = phFinished
		}
		out[ns] = true
	}
	return out
}

// refineCoord narrows the per-path coordinator-nil fact through
// `x != nil` / `x == nil` conditions (and conjunctions containing one)
// where x is coordinator-shaped. States contradicting the taken branch
// are filtered out, which is what correlates a later `coord != nil`
// guard with an earlier one.
func refineCoord(info *types.Info, cond ast.Expr, then bool, in stateSet[dstate]) stateSet[dstate] {
	switch e := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return refineCoord(info, e.X, !then, in)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			if then {
				// Both conjuncts hold on the then-branch.
				return refineCoord(info, e.Y, true, refineCoord(info, e.X, true, in))
			}
			return in // !(A && B) narrows neither conjunct
		case token.LOR:
			if !then {
				return refineCoord(info, e.Y, false, refineCoord(info, e.X, false, in))
			}
			return in
		case token.NEQ, token.EQL:
			var x ast.Expr
			if isNil(e.Y) {
				x = e.X
			} else if isNil(e.X) {
				x = e.Y
			} else {
				return in
			}
			t := info.TypeOf(x)
			if t == nil || !summary.HasMethods(t, "Decide", "Forget") {
				return in
			}
			// coordinator != nil holds on: then-branch of NEQ, else of EQL.
			notNil := then == (e.Op == token.NEQ)
			out := stateSet[dstate]{}
			for s := range in {
				if notNil && s.co == coNil {
					continue
				}
				if !notNil && s.co == coNotNil {
					continue
				}
				ns := s
				if notNil {
					ns.co = coNotNil
				} else {
					ns.co = coNil
				}
				out[ns] = true
			}
			return out
		}
	}
	return in
}

func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// ---------------------------------------------------------------------------
// Check 2: the Decide persist schedule.

func isDecideMethod(fn *types.Func) bool {
	if fn.Name() != "Decide" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return summary.HasMethods(sig.Recv().Type(), "Decide", "Forget")
}

// pstate models the durability of the decision record being built:
// how many stored words are still unflushed (pending) or flushed but
// unfenced (flushed), and whether the last persist still needs a drain
// for device-level durability.
type pstate struct {
	pending   uint8
	flushed   uint8
	needDrain bool
}

func (c *checker) checkDecideBody(f *analysis.ProgFunc) {
	w := &pathWalker[pstate]{
		info: f.Pkg.Info,
		apply: func(call *ast.CallExpr, in stateSet[pstate]) stateSet[pstate] {
			return c.applyPersistCall(f, call, in)
		},
		isEvent: func(call *ast.CallExpr) bool { return false },
		atReturn: func(ret *ast.ReturnStmt, in stateSet[pstate]) {
			// Only the success return commits the coordinator to the
			// decision; error returns may leave arbitrary state.
			if ret == nil || len(ret.Results) != 1 || !isNil(ret.Results[0]) {
				return
			}
			for s := range in {
				if s.pending > 0 || s.flushed > 0 {
					c.report(ret.Pos(), "decision word stored but never persisted before the success return — a crash can lose the decision after participants were told to finish")
					return
				}
			}
			for s := range in {
				if s.needDrain {
					c.report(ret.Pos(), "decision record persisted but not drained before the success return — the decision lacks device-level durability when participants start finishing")
					return
				}
			}
		},
	}
	w.walkBody(f.Decl.Body, stateSet[pstate]{{}: true})
}

// sitePersist returns the transitive persist effects of one call site.
func (c *checker) sitePersist(pkg *analysis.Package, call *ast.CallExpr) uint64 {
	var ev uint64
	for _, fn := range c.g.CalleesAt(pkg, call) {
		ev |= summary.PersistPrimitive(fn) | c.pe[fn.FullName()]
	}
	return ev
}

func (c *checker) applyPersistCall(f *analysis.ProgFunc, call *ast.CallExpr, in stateSet[pstate]) stateSet[pstate] {
	ev := c.sitePersist(f.Pkg, call)
	if ev == 0 {
		return in
	}
	if ev&summary.EffStore != 0 {
		for s := range in {
			if s.pending+s.flushed >= 1 {
				c.report(call.Pos(), "second decision word stored while the first is not yet persisted — the record can tear; persist each word before dirtying the next")
				break
			}
		}
	}
	out := stateSet[pstate]{}
	for s := range in {
		ns := s
		if ev&summary.EffStore != 0 && ns.pending < 2 {
			ns.pending++
		}
		if ev&summary.EffFlush != 0 {
			if ns.flushed+ns.pending > 2 {
				ns.flushed = 2
			} else {
				ns.flushed += ns.pending
			}
			ns.pending = 0
		}
		if ev&summary.EffPersist != 0 {
			ns.pending, ns.flushed, ns.needDrain = 0, 0, true
		}
		if ev&summary.EffFence != 0 {
			if ns.flushed > 0 {
				ns.needDrain = true
			}
			ns.flushed = 0
		}
		if ev&summary.EffDrain != 0 {
			ns.flushed = 0
			ns.needDrain = false
		}
		out[ns] = true
	}
	return out
}
