// Command hyrise-nvd serves a hyrisenv database over TCP — the daemon
// that turns the paper's instant-restart property into near-zero
// downtime as observed by network clients.
//
// Start serving:
//
//	hyrise-nvd -dir /var/lib/hyrise -mode nvm -addr :4466
//
// Signals:
//
//   - SIGTERM / SIGINT: graceful drain — stop accepting, finish
//     in-flight requests, abort open transactions, close the engine.
//   - SIGUSR1: simulated power failure — exit immediately with no
//     drain and no close (the restart-demo switch: under -mode nvm the
//     next start is instant; under -mode log it replays the log).
//
// Restart demo against a running daemon (see also `hyrise-nv connect`):
//
//	hyrise-nvd -dir /tmp/db -mode nvm &
//	hyrise-nv connect load -addr 127.0.0.1:4466 -rows 200000
//	kill -USR1 %1                      # power failure mid-traffic
//	hyrise-nvd -dir /tmp/db -mode nvm  # clients reconnect in milliseconds
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"hyrisenv/internal/disk"
	"hyrisenv/internal/server"
	"hyrisenv/internal/txn"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:4466", "listen address (host:port; port 0 picks a free port)")
	dir := flag.String("dir", "", "database directory (required)")
	modeName := flag.String("mode", "nvm", "durability mode: nvm, log or volatile")
	heap := flag.Uint64("nvm-heap", 1<<30, "simulated NVM device size in bytes on first creation, per shard (nvm mode)")
	shards := flag.Int("shards", 1, "hash partitions; fixed at creation (cross-shard transactions use 2PC)")
	ssd := flag.Bool("ssd", false, "model a 2016-era SSD for the log device (log mode)")
	maxConns := flag.Int("max-conns", 1024, "maximum concurrent client connections")
	maxFrame := flag.Uint("max-frame", 16<<20, "maximum frame payload in bytes")
	idle := flag.Duration("idle-timeout", 5*time.Minute, "disconnect clients idle this long")
	drain := flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown drain budget")
	faultSpec := flag.String("fault", "", `arm the fault-injection plane (chaos testing), e.g. "seed=7,oom=0.001,reset=0.002"`)
	quiet := flag.Bool("quiet", false, "suppress lifecycle logging")
	flag.Parse()

	if *dir == "" {
		log.Fatal("hyrise-nvd: -dir is required")
	}
	var mode txn.Mode
	switch *modeName {
	case "nvm":
		mode = txn.ModeNVM
	case "log":
		mode = txn.ModeLog
	case "volatile":
		mode = txn.ModeNone
	default:
		log.Fatalf("hyrise-nvd: unknown mode %q (want nvm, log or volatile)", *modeName)
	}
	model := disk.Model{}
	if *ssd {
		model = disk.SSD2016
	}
	logf := log.Printf
	if *quiet {
		logf = nil
	}

	err := server.RunDaemon(server.DaemonConfig{
		Addr:        *addr,
		Dir:         *dir,
		Mode:        mode,
		NVMHeapSize: *heap,
		Shards:      *shards,
		DiskModel:   model,
		Server: server.Config{
			MaxConns:    *maxConns,
			MaxFrame:    uint32(*maxFrame),
			IdleTimeout: *idle,
			Logf:        logf,
		},
		DrainTimeout: *drain,
		FaultSpec:    *faultSpec,
		Ready:        os.Stdout,
		Logf:         logf,
	})
	if err != nil {
		log.Fatalf("hyrise-nvd: %v", err)
	}
}
