package nvm

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// growAlloc bump-allocates blocks of n bytes until the heap has grown at
// least once, returning the pointers. Fails the test on any error.
func growAlloc(t *testing.T, h *Heap, n uint64) []PPtr {
	t.Helper()
	start := h.Stats().Grows
	var ptrs []PPtr
	for i := 0; i < 4096; i++ {
		p, err := h.Alloc(n)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		ptrs = append(ptrs, p)
		if h.Stats().Grows > start {
			return ptrs
		}
	}
	t.Fatalf("heap never grew after %d allocations", len(ptrs))
	return nil
}

func TestGrowGeometric(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.nvm")
	const initial = 1 << 20
	h, err := Create(path, initial, WithGrowLimit(16<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	if h.Size() != initial {
		t.Fatalf("initial size %d, want %d", h.Size(), initial)
	}
	// A block before growth; its slice must stay valid across the remap.
	p0, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	old := h.Bytes(p0, 64)
	copy(old, "survives the remap")
	h.PersistBytes(old)
	if err := h.SetRoot("grow:a", p0, 0); err != nil {
		t.Fatal(err)
	}

	growAlloc(t, h, 64<<10)
	if h.Size() != 2*initial {
		t.Fatalf("size after first growth %d, want doubled %d", h.Size(), 2*initial)
	}
	// The pre-growth slice still reads and persists correctly: it aliases
	// the superseded mapping, which views the same file.
	if string(old[:18]) != "survives the remap" {
		t.Fatalf("pre-growth slice corrupted: %q", old[:18])
	}
	copy(old[18:], "!")
	h.PersistBytes(old) // offsetOf must resolve via the old mapping
	if got := h.Bytes(p0, 64); string(got[:19]) != "survives the remap!" {
		t.Fatalf("write through old mapping not visible in new: %q", got[:19])
	}

	// File size follows the heap size.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(st.Size()) != h.Size() {
		t.Fatalf("file size %d != heap size %d", st.Size(), h.Size())
	}
}

func TestGrowLimitExhaustion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.nvm")
	h, err := Create(path, 1<<20, WithGrowLimit(2<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	var lastErr error
	for i := 0; i < 1<<12; i++ {
		if _, lastErr = h.Alloc(64 << 10); lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory at the grow limit, got %v", lastErr)
	}
	if h.Size() != 2<<20 {
		t.Fatalf("heap stopped at %d, want the 2 MiB limit", h.Size())
	}
}

func TestGrowDisabledKeepsFixedSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.nvm")
	h, err := Create(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	var lastErr error
	for i := 0; i < 64; i++ {
		if _, lastErr = h.Alloc(64 << 10); lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrOutOfMemory) {
		t.Fatalf("fixed-size heap should exhaust, got %v", lastErr)
	}
	if h.Size() != 1<<20 {
		t.Fatalf("fixed-size heap grew to %d", h.Size())
	}
}

func TestGrowSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.nvm")
	h, err := Create(path, 1<<20, WithGrowLimit(16<<20))
	if err != nil {
		t.Fatal(err)
	}
	ptrs := growAlloc(t, h, 32<<10)
	last := ptrs[len(ptrs)-1]
	b := h.Bytes(last, 32<<10)
	copy(b, "beyond the original arena")
	h.PersistBytes(b)
	if err := h.SetRoot("grow:last", last, uint64(len(ptrs))); err != nil {
		t.Fatal(err)
	}
	grown := h.Size()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	h2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if h2.Size() != grown {
		t.Fatalf("reopened size %d, want %d", h2.Size(), grown)
	}
	p, aux, ok := h2.Root("grow:last")
	if !ok || p != last || aux != uint64(len(ptrs)) {
		t.Fatalf("root lost across reopen: %v %d %d", ok, p, aux)
	}
	if got := h2.Bytes(p, 25); string(got) != "beyond the original arena" {
		t.Fatalf("grown-arena data lost: %q", got)
	}
}

// TestGrowAdoptsLongerFile simulates a crash between the grow's file
// extension and its header persist: the file is longer than the header
// records. Open must adopt the larger size rather than refuse the heap.
func TestGrowAdoptsLongerFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.nvm")
	h, err := Create(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, 2<<20); err != nil {
		t.Fatal(err)
	}
	h2, err := Open(path)
	if err != nil {
		t.Fatalf("open after simulated mid-grow crash: %v", err)
	}
	defer h2.Close()
	if h2.Size() != 2<<20 {
		t.Fatalf("adopted size %d, want file size %d", h2.Size(), 2<<20)
	}
}

// TestGrowShadowImage is the regression test for the remap fix: in
// pessimistic shadow mode the durable image must cover the grown arena,
// and a simulated crash after growth must revert unfenced lines in the
// *new* region of the heap — a shadow still sized for the initial arena
// would either panic or silently leak unpersisted bytes into recovery.
func TestGrowShadowImage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.nvm")
	h, err := Create(path, 1<<20, WithGrowLimit(8<<20), WithShadow())
	if err != nil {
		t.Fatal(err)
	}
	growAlloc(t, h, 32<<10)
	// One more block: the growth-triggering allocation itself may span the
	// old boundary, but this one lies wholly in the grown region.
	last, err := h.Alloc(32 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(last) < 1<<20 {
		t.Fatalf("expected allocation beyond the initial arena, got %d", last)
	}

	// A persisted write in the grown region survives the crash...
	kept := h.Bytes(last, 64)
	copy(kept, "persisted in grown region")
	h.PersistBytes(kept)
	// ...an unpersisted one does not.
	lost := h.Bytes(last.Add(64), 64)
	copy(lost, "never fenced")

	func() {
		defer func() {
			if r := recover(); r == nil || !errors.Is(r.(error), ErrSimulatedCrash) {
				t.Fatalf("expected simulated crash, got %v", r)
			}
		}()
		h.FailAfter(1)
		h.Fence()
	}()
	if !h.Crashed() {
		t.Fatal("crash not applied")
	}
	if string(kept[:25]) != "persisted in grown region" {
		t.Fatalf("persisted grown-region line lost: %q", kept[:25])
	}
	for _, b := range lost[:12] {
		if b != 0 {
			t.Fatalf("unfenced grown-region line survived the crash: %q", lost[:12])
		}
	}
	h.Close()
}

// countingInjector counts AllocFault consultations and can fail them.
type countingInjector struct {
	calls int
	fail  bool
}

func (c *countingInjector) AllocFault(size uint64) error {
	c.calls++
	if c.fail {
		return ErrOutOfMemory
	}
	return nil
}
func (c *countingInjector) BarrierDelay() time.Duration { return 0 }
func (c *countingInjector) DrainDelay() time.Duration   { return 0 }

// TestGrowKeepsFaultInjector is the other half of the remap fix: an
// injector armed before growth must keep intercepting allocations (and
// barriers) on the grown heap.
func TestGrowKeepsFaultInjector(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.nvm")
	h, err := Create(path, 1<<20, WithGrowLimit(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	inj := &countingInjector{}
	h.SetFaultInjector(inj)
	growAlloc(t, h, 32<<10)
	before := inj.calls
	if before == 0 {
		t.Fatal("injector never consulted before growth")
	}
	inj.fail = true
	if _, err := h.Alloc(64); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("injected fault not delivered after growth: %v", err)
	}
	if inj.calls <= before {
		t.Fatal("injector not consulted after growth")
	}
}
