package server_test

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"hyrisenv"
	"hyrisenv/client"
	"hyrisenv/internal/backoff"
	"hyrisenv/internal/disk"
	"hyrisenv/internal/server"
	"hyrisenv/internal/txn"
	"hyrisenv/internal/workload"
)

// TestMain doubles as the hyrise-nvd daemon when re-exec'd by the
// process-level tests below: a child with HYRISENV_DAEMON_DIR set runs
// server.RunDaemon instead of the test suite, so killing it is a real
// process crash, not a simulated one.
func TestMain(m *testing.M) {
	if os.Getenv("HYRISENV_DAEMON_DIR") != "" {
		runDaemonChild()
		return
	}
	os.Exit(m.Run())
}

func runDaemonChild() {
	mode := txn.ModeNVM
	if os.Getenv("HYRISENV_DAEMON_MODE") == "log" {
		mode = txn.ModeLog
	}
	var model disk.Model
	if bw := os.Getenv("HYRISENV_DAEMON_READBW"); bw != "" {
		n, err := strconv.ParseInt(bw, 10, 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		model.ReadBandwidth = n
	}
	addr := os.Getenv("HYRISENV_DAEMON_ADDR")
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	err := server.RunDaemon(server.DaemonConfig{
		Addr:         addr,
		Dir:          os.Getenv("HYRISENV_DAEMON_DIR"),
		Mode:         mode,
		NVMHeapSize:  256 << 20,
		DiskModel:    model,
		DrainTimeout: 2 * time.Second,
		Ready:        os.Stdout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

type daemon struct {
	cmd  *exec.Cmd
	addr string
}

// startDaemon re-execs the test binary as a hyrise-nvd child and waits
// for its readiness line. addr "" picks a free port.
func startDaemon(t *testing.T, dir, mode, addr string, readBW int64) *daemon {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		"HYRISENV_DAEMON_DIR="+dir,
		"HYRISENV_DAEMON_MODE="+mode,
		"HYRISENV_DAEMON_ADDR="+addr,
		fmt.Sprintf("HYRISENV_DAEMON_READBW=%d", readBW),
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill() //nolint:errcheck — may already be dead
		cmd.Wait()         //nolint:errcheck
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if a, ok := strings.CutPrefix(sc.Text(), "LISTENING "); ok {
			go io.Copy(io.Discard, stdout) //nolint:errcheck — keep the pipe drained
			return &daemon{cmd: cmd, addr: a}
		}
	}
	t.Fatalf("daemon never reported LISTENING (scanner err: %v)", sc.Err())
	return nil
}

// kill sends SIGKILL — a crash the daemon cannot intercept — and reaps
// the child.
func (d *daemon) kill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait() //nolint:errcheck — killed on purpose
}

// loadOrders creates and fills the orders table over the wire through
// concurrent pooled connections.
func loadOrders(t *testing.T, c *client.Client, size, workers int) {
	t.Helper()
	sch := workload.Schema()
	cols := make([]hyrisenv.Column, sch.NumCols())
	for i, cd := range sch.Cols {
		cols[i] = hyrisenv.Column{Name: cd.Name, Type: cd.Type}
	}
	if err := c.CreateTable("orders", cols, "id", "customer"); err != nil {
		t.Fatal(err)
	}
	spec := workload.DefaultSpec(size)
	const batch = 250
	var next atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				lo := int(next.Add(batch)) - batch
				if lo >= size {
					return
				}
				hi := min(lo+batch, size)
				tx, err := c.Begin()
				if err != nil {
					errCh <- err
					return
				}
				for i := lo; i < hi; i++ {
					if _, err := tx.Insert("orders", spec.Row(rng, i)...); err != nil {
						tx.Abort() //nolint:errcheck
						errCh <- err
						return
					}
				}
				if err := tx.Commit(); err != nil {
					errCh <- err
					return
				}
			}
		}(spec.Seed + int64(w))
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// measureDaemonKill is the flagship scenario: ≥32 concurrent client
// connections drive a mixed workload through the pool against a
// re-exec'd hyrise-nvd, the daemon is SIGKILLed mid-workload and
// restarted on the same address, and the workers themselves report when
// service resumed. Returns the client-observed downtime.
func measureDaemonKill(t *testing.T, mode string, size int, readBW int64) time.Duration {
	t.Helper()
	const workers = 32 // concurrent client goroutines, one conn each
	const writers = 4  // of which run insert transactions

	dir := t.TempDir()
	d := startDaemon(t, dir, mode, "", readBW)
	c, err := client.Dial(d.addr, client.Options{
		PoolSize:       workers + 8,
		RequestTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	loadOrders(t, c, size, 8)
	if n, err := c.Count("orders"); err != nil || n != size {
		t.Fatalf("loaded count = %d, %v; want %d", n, err, size)
	}

	spec := workload.DefaultSpec(size)
	var killedAt atomic.Int64    // unix nanos; 0 = still up
	var recoveredAt atomic.Int64 // first post-kill success
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			fresh := size + w*100000 // disjoint id space per writer
			for {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				if w < writers {
					var tx *client.Tx
					if tx, err = c.Begin(); err == nil {
						fresh++
						if _, err = tx.Insert("orders", spec.Row(rng, fresh)...); err == nil {
							err = tx.Commit()
						} else {
							tx.Abort() //nolint:errcheck
						}
					}
				} else {
					pred := hyrisenv.Pred{Col: "customer", Op: hyrisenv.Eq,
						Val: hyrisenv.Int(int64(rng.Intn(spec.Customers)))}
					_, err = c.Count("orders", pred)
				}
				if err == nil {
					if k := killedAt.Load(); k != 0 {
						recoveredAt.CompareAndSwap(0, time.Now().UnixNano())
						return
					}
				}
			}
		}(w)
	}

	// Let the mixed workload run against the daemon, then pull the plug.
	time.Sleep(250 * time.Millisecond)
	d.kill(t)
	killedAt.Store(time.Now().UnixNano())

	// Restart on the same address; the pooled client re-dials on retry.
	startDaemon(t, dir, mode, d.addr, readBW)

	deadline := time.Now().Add(60 * time.Second)
	pol := backoff.Policy{Base: 2 * time.Millisecond, Max: 25 * time.Millisecond}
	for i := 0; recoveredAt.Load() == 0; i++ {
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			t.Fatal("no worker observed recovery")
		}
		time.Sleep(pol.Delay(i))
	}
	close(stop)
	wg.Wait()
	downtime := time.Duration(recoveredAt.Load() - killedAt.Load())

	// All pre-kill committed rows survived; in-flight writers at the kill
	// were rolled back, so the count is at least the loaded size.
	n, err := c.Count("orders")
	if err != nil {
		t.Fatal(err)
	}
	if n < size {
		t.Fatalf("post-restart count = %d, want >= %d", n, size)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s/%d rows: downtime %v, recovery %v (replayed %d records, rolled back %d)",
		mode, size, downtime.Round(time.Millisecond), st.Recovery.Round(time.Millisecond),
		st.ReplayRecords, st.RolledBack)
	return downtime
}

// TestDaemonKillRestartUnderLoad reproduces the paper's headline claim
// at the system boundary: with a real daemon process SIGKILLed under a
// 32-connection workload, the client-observed downtime in NVM mode does
// not grow with the dataset, while log-mode downtime does.
func TestDaemonKillRestartUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon kill/restart matrix skipped in -short")
	}
	const small, large = 1500, 6000 // ≥4× apart
	const readBW = 2 << 20          // modeled log-read bandwidth: replay dominates

	nvmSmall := measureDaemonKill(t, "nvm", small, readBW)
	nvmLarge := measureDaemonKill(t, "nvm", large, readBW)
	logSmall := measureDaemonKill(t, "log", small, readBW)
	logLarge := measureDaemonKill(t, "log", large, readBW)

	t.Logf("client-observed downtime: nvm %v -> %v, log %v -> %v (rows %d -> %d)",
		nvmSmall.Round(time.Millisecond), nvmLarge.Round(time.Millisecond),
		logSmall.Round(time.Millisecond), logLarge.Round(time.Millisecond), small, large)

	// NVM is size-independent: both measurements carry the same constant
	// process-respawn cost, so clamp to a floor and bound the ratio.
	const floor = 50 * time.Millisecond
	clamp := func(d time.Duration) time.Duration {
		if d < floor {
			return floor
		}
		return d
	}
	if ratio := float64(clamp(nvmLarge)) / float64(clamp(nvmSmall)); ratio > 2 {
		t.Errorf("NVM downtime grew with dataset size: %v -> %v (ratio %.2f, want <= 2)",
			nvmSmall, nvmLarge, ratio)
	}
	// Log-mode replay is size-proportional on the modeled device: the 4×
	// dataset must cost visibly more than the respawn constant.
	if logLarge < logSmall+100*time.Millisecond {
		t.Errorf("log downtime did not grow with dataset size: %v -> %v", logSmall, logLarge)
	}
	if logLarge < 2*clamp(nvmLarge) {
		t.Errorf("log recovery (%v) not slower than NVM (%v) at %d rows", logLarge, nvmLarge, large)
	}
}

// TestDaemonGracefulShutdown checks the SIGTERM drain path: the daemon
// exits 0, and a restart serves the committed data.
func TestDaemonGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	d := startDaemon(t, dir, "nvm", "", 0)
	c, err := client.Dial(d.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	loadOrders(t, c, 200, 2)

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v", err)
	}

	d2 := startDaemon(t, dir, "nvm", "", 0)
	c2, err := client.Dial(d2.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if n, err := c2.Count("orders"); err != nil || n != 200 {
		t.Fatalf("count after graceful restart = %d, %v; want 200", n, err)
	}
}

// TestDaemonPowerFailureSignal checks the SIGUSR1 "pull the plug" path:
// the daemon exits 2 without closing, and recovery still serves every
// committed row.
func TestDaemonPowerFailureSignal(t *testing.T) {
	dir := t.TempDir()
	d := startDaemon(t, dir, "nvm", "", 0)
	c, err := client.Dial(d.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	loadOrders(t, c, 200, 2)
	// Leave a transaction in flight across the "power failure".
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.DefaultSpec(200)
	rng := rand.New(rand.NewSource(7))
	if _, err := tx.Insert("orders", spec.Row(rng, 10001)...); err != nil {
		t.Fatal(err)
	}

	if err := d.cmd.Process.Signal(syscall.SIGUSR1); err != nil {
		t.Fatal(err)
	}
	err = d.cmd.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Fatalf("daemon exit after SIGUSR1: %v, want exit code 2", err)
	}

	d2 := startDaemon(t, dir, "nvm", "", 0)
	c2, err := client.Dial(d2.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// The in-flight insert was rolled back by recovery.
	if n, err := c2.Count("orders"); err != nil || n != 200 {
		t.Fatalf("count after power failure = %d, %v; want 200", n, err)
	}
	st, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != hyrisenv.NVM {
		t.Fatalf("mode = %v", st.Mode)
	}
}
