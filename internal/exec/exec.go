// Package exec is the shared query executor behind every read path of
// the engine: the embedded Tx API and the network server's request
// handlers funnel their scans, aggregations and joins through one
// Executor.
//
// Execution is morsel-driven (Leis et al., "Morsel-Driven Parallelism"):
// the main and delta partitions of a table are split into fixed-size
// runs of rows (morsels) that a pool of workers claims from an atomic
// cursor, so a fast core simply processes more morsels than a slow one.
// Each operator captures one partition View at entry and applies MVCC
// visibility per row inside the morsel, so results are transactionally
// consistent even while merges publish new generations and concurrent
// writers commit. Results keyed by morsel index are reassembled in
// morsel order, which makes row-ID output deterministic and identical
// to a serial scan.
//
// An Executor with Parallelism 1 runs every morsel inline on the
// calling goroutine — exact serial execution — so "serial" is a
// configuration, not a separate code path.
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hyrisenv/internal/storage"
)

// MorselRows is the number of rows in one unit of claimed work. Small
// enough to load-balance skewed predicates across workers, large enough
// that the atomic claim is amortized over thousands of rows.
const MorselRows = 16384

// Errors returned by the executor. Operator wrappers and the server map
// these onto API- and wire-level error codes.
var (
	// ErrBadColumn means a predicate, grouping or join column index is
	// out of range for the table's schema.
	ErrBadColumn = errors.New("exec: no such column")
	// ErrBadValue means a predicate or range bound value's type does not
	// match the column it is compared against.
	ErrBadValue = errors.New("exec: value type does not match column type")
)

// Executor runs query operators at a fixed degree of parallelism. It is
// stateless apart from that degree and safe for concurrent use by any
// number of transactions.
type Executor struct {
	par int
}

// New returns an executor with the given degree of parallelism;
// parallelism <= 0 selects GOMAXPROCS (one worker per schedulable
// core), 1 is strictly serial.
func New(parallelism int) *Executor {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &Executor{par: parallelism}
}

// Serial is a shared parallelism-1 executor, used by tests and parity
// checks as the reference serial execution.
var Serial = New(1)

// Parallelism returns the configured worker count.
func (e *Executor) Parallelism() int { return e.par }

// forEachMorsel splits [0, rows) into MorselRows-sized morsels and runs
// fn for each. slot is the morsel index (morsel s covers rows
// [s*MorselRows, min((s+1)*MorselRows, rows))) — results stored by slot
// and concatenated in slot order reproduce ascending row order. worker
// identifies the claiming worker in [0, e.par) so fn can keep
// worker-local state (matcher memos, partial aggregates).
//
// With one worker (or one morsel) everything runs inline on the calling
// goroutine. Otherwise up to e.par workers claim morsels from an atomic
// cursor until the table is drained, fn fails, or ctx is cancelled;
// the first error wins and is returned after all workers have stopped.
func (e *Executor) forEachMorsel(ctx context.Context, rows uint64, fn func(worker, slot int, lo, hi uint64) error) error {
	nm := int((rows + MorselRows - 1) / MorselRows)
	workers := e.par
	if workers > nm {
		workers = nm
	}
	if workers <= 1 {
		for s := 0; s < nm; s++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			lo := uint64(s) * MorselRows
			hi := min(lo+MorselRows, rows)
			if err := fn(0, s, lo, hi); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		cursor  atomic.Int64
		failed  atomic.Bool
		errOnce sync.Once
		firstEr error
		wg      sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstEr = err })
		failed.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				s := int(cursor.Add(1) - 1)
				if s >= nm {
					return
				}
				lo := uint64(s) * MorselRows
				hi := min(lo+MorselRows, rows)
				if err := fn(worker, s, lo, hi); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstEr
}

// checkCol validates a column index against the schema.
func checkCol(tbl *storage.Table, col int) error {
	if col < 0 || col >= tbl.Schema.NumCols() {
		return fmt.Errorf("%w: column %d of table %q (%d columns)",
			ErrBadColumn, col, tbl.Name, tbl.Schema.NumCols())
	}
	return nil
}

// checkColValue validates a column index and a value compared against it.
func checkColValue(tbl *storage.Table, col int, v storage.Value) error {
	if err := checkCol(tbl, col); err != nil {
		return err
	}
	if want := tbl.Schema.Cols[col].Type; v.T != want {
		return fmt.Errorf("%w: %s against %s column %q of table %q",
			ErrBadValue, v.T, want, tbl.Schema.Cols[col].Name, tbl.Name)
	}
	return nil
}
