package hyrisenv

import (
	"hyrisenv/internal/query"
	"hyrisenv/internal/txn"
)

// Tx is a transaction. It reads a consistent snapshot taken at Begin and
// buffers writes that become atomically visible — and durable, per the
// database's mode — at Commit. A Tx is not safe for concurrent use.
type Tx struct {
	tx *txn.Txn
}

// Begin starts a transaction.
func (db *DB) Begin() *Tx { return &Tx{tx: db.eng.Begin()} }

// Insert appends a row and returns its physical row ID.
func (tx *Tx) Insert(t *Table, vals ...Value) (uint64, error) {
	return tx.tx.Insert(t.t, vals)
}

// Delete invalidates the row (it stays visible to older snapshots).
func (tx *Tx) Delete(t *Table, row uint64) error {
	return tx.tx.Delete(t.t, row)
}

// Update replaces the row with new values and returns the new version's
// row ID (insert-only MVCC: the old version is invalidated).
func (tx *Tx) Update(t *Table, row uint64, vals ...Value) (uint64, error) {
	return tx.tx.Update(t.t, row, vals)
}

// Commit makes the transaction's effects visible and durable.
func (tx *Tx) Commit() error { return tx.tx.Commit() }

// Abort rolls the transaction back.
func (tx *Tx) Abort() error { return tx.tx.Abort() }

// Sees reports whether the transaction sees the given physical row.
func (tx *Tx) Sees(t *Table, row uint64) bool { return tx.tx.Sees(t.t, row) }

// Op is a predicate comparison operator.
type Op = query.Op

// Predicate operators.
const (
	Eq = query.Eq
	Ne = query.Ne
	Lt = query.Lt
	Le = query.Le
	Gt = query.Gt
	Ge = query.Ge
)

// Pred is a single-column predicate for Select.
type Pred struct {
	Col string
	Op  Op
	Val Value
}

func (tx *Tx) preds(t *Table, ps []Pred) []query.Pred {
	out := make([]query.Pred, len(ps))
	for i, p := range ps {
		out[i] = query.Pred{Col: t.t.Schema.ColIndex(p.Col), Op: p.Op, Val: p.Val}
	}
	return out
}

// Select returns the row IDs satisfying all predicates, using secondary
// indexes where available.
func (tx *Tx) Select(t *Table, preds ...Pred) []uint64 {
	return query.Select(tx.tx, t.t, tx.preds(t, preds)...)
}

// SelectRange returns rows whose named column falls in [lo, hi).
func (tx *Tx) SelectRange(t *Table, col string, lo, hi Value) []uint64 {
	return query.SelectRange(tx.tx, t.t, t.t.Schema.ColIndex(col), lo, hi)
}

// Count returns the number of rows satisfying all predicates.
func (tx *Tx) Count(t *Table, preds ...Pred) int {
	return query.Count(tx.tx, t.t, tx.preds(t, preds)...)
}

// ScanAll returns every visible row ID.
func (tx *Tx) ScanAll(t *Table) []uint64 {
	return query.ScanAll(tx.tx, t.t)
}

// Row materializes all columns of a row.
func (tx *Tx) Row(t *Table, row uint64) []Value {
	cols := make([]int, t.t.Schema.NumCols())
	for i := range cols {
		cols[i] = i
	}
	return query.Project(t.t, []uint64{row}, cols...)[0]
}

// Group is one GROUP BY result row.
type Group = query.Group

// GroupBy aggregates all visible rows grouped by column groupCol,
// summing aggCol ("" = count only). Results are ordered by group key.
func (tx *Tx) GroupBy(t *Table, groupCol, aggCol string) []Group {
	agg := -1
	if aggCol != "" {
		agg = t.t.Schema.ColIndex(aggCol)
	}
	return query.GroupBy(tx.tx, t.t, t.t.Schema.ColIndex(groupCol), agg)
}

// TopK returns the k groups with the largest Sum.
func TopK(groups []Group, k int) []Group { return query.TopK(groups, k) }

// BeginAt starts a read-only transaction reading the database as of a
// historical commit ID — time travel over the insert-only MVCC versions
// (available until a merge compacts the history away). Write operations
// on the returned Tx fail.
func (db *DB) BeginAt(cid uint64) *Tx { return &Tx{tx: db.eng.Manager().BeginAt(cid)} }

// LastCommitID returns the current commit horizon, usable with BeginAt.
func (db *DB) LastCommitID() uint64 { return db.eng.Manager().LastCID() }

// JoinPair couples row IDs of an equi-join result.
type JoinPair = query.JoinPair

// Join computes the inner equi-join left.leftCol = right.rightCol over
// the rows visible to the transaction.
func (tx *Tx) Join(left *Table, leftCol string, right *Table, rightCol string) ([]JoinPair, error) {
	return query.HashJoin(tx.tx,
		left.t, left.t.Schema.ColIndex(leftCol),
		right.t, right.t.Schema.ColIndex(rightCol))
}

// OrderBy sorts the row IDs by the named column (in place) using the
// order-preserving dictionary encoding; desc reverses.
func (tx *Tx) OrderBy(t *Table, rows []uint64, col string, desc bool) []uint64 {
	return query.OrderBy(t.t, rows, t.t.Schema.ColIndex(col), desc)
}

// Limit returns at most n of rows starting at offset.
func Limit(rows []uint64, offset, n int) []uint64 { return query.Limit(rows, offset, n) }
