package shard

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"hyrisenv/internal/exec"
	"hyrisenv/internal/storage"
	"hyrisenv/internal/txn"
)

// ErrNoSuchRow is returned for a global row ID that addresses no row.
var ErrNoSuchRow = errors.New("shard: no such row")

// Tx is a transaction over the sharded engine. It pins one global
// snapshot CID and lazily opens a part transaction on each shard it
// touches. A transaction whose writes land on a single shard commits on
// that shard's unmodified fast path; writes spanning shards commit with
// two-phase commit through the coordinator. A Tx is not safe for
// concurrent use.
type Tx struct {
	e        *Engine
	snapCID  uint64
	readOnly bool
	parts    []*txn.Txn // lazily begun, indexed by shard
	done     bool
}

// gtidSrc hands out global transaction IDs for cross-shard commits in
// modes without a coordinator heap (ModeNone, ModeLog), where the gtid
// only needs process-lifetime uniqueness.
var gtidSrc atomic.Uint64

// Begin starts a transaction at the current global snapshot horizon.
func (e *Engine) Begin() *Tx {
	if e.clock == nil {
		t := &Tx{e: e, parts: make([]*txn.Txn, 1)}
		t.parts[0] = e.shards[0].Begin()
		t.snapCID = t.parts[0].SnapshotCID()
		return t
	}
	return &Tx{e: e, snapCID: e.clock.Visible(), parts: make([]*txn.Txn, len(e.shards))}
}

// BeginAt starts a read-only transaction at a historical snapshot,
// clamped to the current horizon.
func (e *Engine) BeginAt(cid uint64) *Tx {
	if e.clock == nil {
		t := &Tx{e: e, readOnly: true, parts: make([]*txn.Txn, 1)}
		t.parts[0] = e.shards[0].Manager().BeginAt(cid)
		t.snapCID = t.parts[0].SnapshotCID()
		return t
	}
	if horizon := e.clock.Visible(); cid > horizon {
		cid = horizon
	}
	return &Tx{e: e, snapCID: cid, readOnly: true, parts: make([]*txn.Txn, len(e.shards))}
}

// SnapshotCID returns the global CID this transaction reads at.
func (t *Tx) SnapshotCID() uint64 { return t.snapCID }

// part returns the shard-local transaction for shard i, beginning one
// pinned to the global snapshot on first touch.
func (t *Tx) part(i int) *txn.Txn {
	if t.parts[i] == nil {
		t.parts[i] = t.e.shards[i].Manager().BeginSnapshot(t.snapCID, t.readOnly)
	}
	return t.parts[i]
}

// Part exposes the shard-local transaction for shard i (opening it on
// first touch) to sibling benchmark and test code that drives the txn
// layer directly. Row IDs it returns are shard-local.
func (t *Tx) Part(i int) *txn.Txn { return t.part(i) }

// Active reports whether the transaction is still open (not committed
// or aborted).
func (t *Tx) Active() bool { return !t.done }

// ShardOf routes a partition-key value (a row's first column) to its
// shard: FNV-1a over the order-preserving key encoding, so routing is
// deterministic across restarts and independent of dictionary state.
func (e *Engine) ShardOf(v storage.Value) int {
	n := len(e.shards)
	if n == 1 {
		return 0
	}
	key := v.EncodeKey(nil)
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return int(h % uint64(n))
}

// Insert appends a row to the shard its first column hashes to and
// returns its global row ID.
func (t *Tx) Insert(tbl *Table, vals []storage.Value) (uint64, error) {
	if t.done {
		return 0, txn.ErrNotActive
	}
	shard := 0
	if len(vals) > 0 {
		shard = t.e.ShardOf(vals[0])
	}
	local, err := t.part(shard).Insert(tbl.parts[shard], vals)
	if err != nil {
		return 0, err
	}
	return globalRow(shard, local), nil
}

// Delete invalidates the row addressed by a global row ID.
func (t *Tx) Delete(tbl *Table, row uint64) error {
	if t.done {
		return txn.ErrNotActive
	}
	shard, local := splitRow(row)
	if shard >= len(t.e.shards) {
		return txn.ErrRowNotFound
	}
	return t.part(shard).Delete(tbl.parts[shard], local)
}

// Update replaces the row with new values and returns the new version's
// global row ID. When the new partition key hashes to a different
// shard, the row moves: the old version is invalidated in place and the
// new one inserted where it now routes — atomically, since both parts
// commit under one decision.
func (t *Tx) Update(tbl *Table, row uint64, vals []storage.Value) (uint64, error) {
	if t.done {
		return 0, txn.ErrNotActive
	}
	shard, local := splitRow(row)
	if shard >= len(t.e.shards) {
		return 0, txn.ErrRowNotFound
	}
	newShard := shard
	if len(vals) > 0 {
		newShard = t.e.ShardOf(vals[0])
	}
	if newShard == shard {
		local2, err := t.part(shard).Update(tbl.parts[shard], local, vals)
		if err != nil {
			return 0, err
		}
		return globalRow(shard, local2), nil
	}
	if err := t.part(shard).Delete(tbl.parts[shard], local); err != nil {
		return 0, err
	}
	local2, err := t.part(newShard).Insert(tbl.parts[newShard], vals)
	if err != nil {
		return 0, err
	}
	return globalRow(newShard, local2), nil
}

// Sees reports whether the transaction sees the given global row.
func (t *Tx) Sees(tbl *Table, row uint64) bool {
	shard, local := splitRow(row)
	if shard >= len(t.e.shards) || local >= tbl.parts[shard].Rows() {
		return false
	}
	return t.part(shard).Sees(tbl.parts[shard], local)
}

// Abort rolls every part back.
func (t *Tx) Abort() error {
	if t.done {
		return txn.ErrNotActive
	}
	t.done = true
	var errs []error
	for _, p := range t.parts {
		if p != nil && p.Status() == txn.StatusActive {
			if err := p.Abort(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

// Commit makes the transaction's effects visible and durable. Writes on
// one shard commit through that shard's ordinary protocol (including
// group commit); writes spanning shards run two-phase commit: every
// part durably prepares under one global transaction ID, the
// coordinator persists the commit decision (the atomic commit point),
// and every part finishes with the decided CID. In ModeNVM the whole
// sequence is crash-atomic — recovery resolves prepared parts against
// the coordinator record. In ModeLog a cross-shard commit is
// visibility-atomic (the clock withholds the CID until all parts
// publish) but not crash-atomic, as the log format has no prepared
// state; the crash-atomic configuration is ModeNVM.
func (t *Tx) Commit() error {
	if t.done {
		return txn.ErrNotActive
	}
	t.done = true

	var writers []*txn.Txn
	var writerShards []int
	for i, p := range t.parts {
		if p != nil && p.Writes() > 0 {
			writers = append(writers, p)
			writerShards = append(writerShards, i)
		}
	}

	// Zero or one writing part: the single-shard fast path — exactly the
	// unsharded commit protocol on the owning shard.
	if len(writers) <= 1 {
		var errs []error
		for _, p := range t.parts {
			if p == nil || p.Status() != txn.StatusActive {
				continue
			}
			if err := p.Commit(); err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}

	return t.commitCross(writers, writerShards)
}

// abortRemaining aborts still-active parts after a failed prepare.
func (t *Tx) abortRemaining(notPrepared []*txn.Txn) {
	for _, w := range notPrepared {
		if w.Status() == txn.StatusActive {
			w.Abort() //nolint:errcheck — already failing
		}
	}
	for _, p := range t.parts {
		if p != nil && p.Status() == txn.StatusActive {
			p.Abort() //nolint:errcheck — already failing
		}
	}
}

// --- Reads: fan out per shard, translate row IDs, merge ----------------------

// Select returns the global row IDs visible to the transaction that
// satisfy all predicates, fanning the scan out shard by shard (each
// shard's scan is itself morsel-parallel). Results are ordered by shard,
// then by physical row within the shard.
func (t *Tx) Select(ctx context.Context, tbl *Table, preds ...exec.Pred) ([]uint64, error) {
	ex := t.e.Exec()
	var out []uint64
	for i := range t.e.shards {
		rows, err := ex.Select(ctx, t.part(i), tbl.parts[i], preds...)
		if err != nil {
			return nil, err
		}
		out = appendGlobal(out, i, rows)
	}
	return out, nil
}

// SelectRange returns global rows whose column col falls in [lo, hi).
func (t *Tx) SelectRange(ctx context.Context, tbl *Table, col int, lo, hi storage.Value) ([]uint64, error) {
	ex := t.e.Exec()
	var out []uint64
	for i := range t.e.shards {
		rows, err := ex.SelectRange(ctx, t.part(i), tbl.parts[i], col, lo, hi)
		if err != nil {
			return nil, err
		}
		out = appendGlobal(out, i, rows)
	}
	return out, nil
}

// Count returns the number of visible rows satisfying all predicates.
func (t *Tx) Count(ctx context.Context, tbl *Table, preds ...exec.Pred) (int, error) {
	ex := t.e.Exec()
	total := 0
	for i := range t.e.shards {
		n, err := ex.Count(ctx, t.part(i), tbl.parts[i], preds...)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// GroupBy aggregates all visible rows grouped by groupCol, summing
// aggCol (< 0 for count-only): each shard aggregates its partition and
// the partial aggregates merge by group key.
func (t *Tx) GroupBy(ctx context.Context, tbl *Table, groupCol, aggCol int) ([]exec.Group, error) {
	ex := t.e.Exec()
	if len(t.e.shards) == 1 {
		return ex.GroupBy(ctx, t.part(0), tbl.parts[0], groupCol, aggCol)
	}
	partials := make([][]exec.Group, len(t.e.shards))
	for i := range t.e.shards {
		g, err := ex.GroupBy(ctx, t.part(i), tbl.parts[i], groupCol, aggCol)
		if err != nil {
			return nil, err
		}
		partials[i] = g
	}
	return exec.MergeGroups(partials...), nil
}

// HashJoin computes the inner equi-join left.leftCol = right.rightCol
// over the visible rows of both tables across all shards. The build
// side's encoded join keys are collected from every shard into one hash
// table (keys encode values, not dictionary IDs, so they compare across
// partitions), then every shard's probe side streams against it —
// matching rows pair up regardless of which shards they live on.
func (t *Tx) HashJoin(ctx context.Context, left *Table, leftCol int, right *Table, rightCol int) ([]exec.JoinPair, error) {
	ex := t.e.Exec()
	if len(t.e.shards) == 1 {
		return ex.HashJoin(ctx, t.part(0), left.parts[0], leftCol, right.parts[0], rightCol)
	}
	lt := left.Schema.Cols[leftCol].Type
	rt := right.Schema.Cols[rightCol].Type
	if lt != rt {
		return nil, fmt.Errorf("%w: join column types differ (%s vs %s)", exec.ErrBadValue, lt, rt)
	}

	build := map[string][]uint64{}
	for i := range t.e.shards {
		rows, err := ex.Select(ctx, t.part(i), left.parts[i])
		if err != nil {
			return nil, err
		}
		keys, err := encodedKeys(left.parts[i], leftCol, rows)
		if err != nil {
			return nil, err
		}
		for j, r := range rows {
			build[keys[j]] = append(build[keys[j]], globalRow(i, r))
		}
	}

	var out []exec.JoinPair
	for i := range t.e.shards {
		rows, err := ex.Select(ctx, t.part(i), right.parts[i])
		if err != nil {
			return nil, err
		}
		keys, err := encodedKeys(right.parts[i], rightCol, rows)
		if err != nil {
			return nil, err
		}
		for j, r := range rows {
			for _, l := range build[keys[j]] {
				out = append(out, exec.JoinPair{Left: l, Right: globalRow(i, r)})
			}
		}
	}
	return out, nil
}

// encodedKeys returns each row's order-preserving encoded key for col.
func encodedKeys(tbl *storage.Table, col int, rows []uint64) ([]string, error) {
	if col < 0 || col >= tbl.Schema.NumCols() {
		return nil, fmt.Errorf("%w: column %d of table %s", exec.ErrBadColumn, col, tbl.Name)
	}
	v := tbl.View()
	mr := v.MainRows()
	out := make([]string, len(rows))
	for i, r := range rows {
		if r < mr {
			mc := v.MainColumnAt(col)
			out[i] = string(mc.DictKey(mc.ValueID(r)))
		} else {
			dc := v.DeltaColumnAt(col)
			out[i] = string(dc.DictKey(dc.ValueID(r - mr)))
		}
	}
	return out, nil
}

// Row materializes all columns of the global row.
func (t *Tx) Row(ctx context.Context, tbl *Table, row uint64) ([]storage.Value, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	shard, local := splitRow(row)
	if shard >= len(t.e.shards) || local >= tbl.parts[shard].Rows() {
		return nil, fmt.Errorf("%w: row %d of table %q", ErrNoSuchRow, row, tbl.Name)
	}
	cols := make([]int, tbl.Schema.NumCols())
	for i := range cols {
		cols[i] = i
	}
	return exec.Project(tbl.parts[shard], []uint64{local}, cols...)[0], nil
}

// OrderBy sorts global row IDs by the given column (in place) using the
// order-preserving key encoding, which compares across shards' separate
// dictionaries. desc reverses.
func (t *Tx) OrderBy(tbl *Table, rows []uint64, col int, desc bool) ([]uint64, error) {
	if len(t.e.shards) == 1 {
		return exec.OrderBy(tbl.parts[0], rows, col, desc), nil
	}
	keys := make([][]byte, len(rows))
	views := make([]storage.View, len(tbl.parts))
	for i, p := range tbl.parts {
		views[i] = p.View()
	}
	for i, r := range rows {
		shard, local := splitRow(r)
		if shard >= len(t.e.shards) {
			return nil, fmt.Errorf("%w: row %d", ErrNoSuchRow, r)
		}
		v := views[shard]
		if mr := v.MainRows(); local < mr {
			mc := v.MainColumnAt(col)
			keys[i] = mc.DictKey(mc.ValueID(local))
		} else {
			dc := v.DeltaColumnAt(col)
			keys[i] = dc.DictKey(dc.ValueID(local - mr))
		}
	}
	exec.SortRowsByKeys(rows, keys, desc)
	return rows, nil
}

// appendGlobal appends shard-local rows to out with their shard tag.
func appendGlobal(out []uint64, shard int, rows []uint64) []uint64 {
	if shard == 0 {
		return append(out, rows...)
	}
	for _, r := range rows {
		out = append(out, globalRow(shard, r))
	}
	return out
}
