package nvm

import (
	"bytes"
	"math/rand"
)

// Pessimistic crash model.
//
// The optimistic simulation (the default) lets every store survive a
// simulated crash because the mapping is file-backed; it can therefore
// never catch a missing persist barrier dynamically. Shadow mode closes
// that gap: a second, volatile buffer mirrors the *durable image* of the
// heap — the bytes real NVM would be guaranteed to hold after a power
// failure. Stores land in the mapping as usual, but reach the shadow
// only when a Persist barrier covering their cache line completes. When
// the fail-point fires, every dirty line (mapping != shadow) is reverted
// to the shadow — simulating total loss of the CPU caches — or, with a
// tear seed, mixed with it at 8-byte granularity, simulating the
// partial-writeback tearing real hardware permits between fences
// (individual aligned 8-byte stores are failure-atomic on x86; anything
// wider, or any group of stores, is not).

// WithShadow enables the pessimistic crash model on the heap. Strictly a
// crash-testing facility: it doubles memory use and adds a copy at every
// persist barrier. The optimistic model remains the benchmark default.
func WithShadow() Option {
	return func(h *Heap) { h.shadowOn = true }
}

// ShadowEnabled reports whether the pessimistic crash model is active.
func (h *Heap) ShadowEnabled() bool { return h.shadow != nil }

// SetTearSeed selects the crash behavior for dirty cache lines. Seed 0
// (the default) reverts whole lines — the pure-loss model. A non-zero
// seed seeds a deterministic RNG that tears each dirty line at aligned
// 8-byte word granularity: every word independently keeps the new value
// or reverts to the durable one, enumerating the partial-writeback
// states real hardware can expose.
func (h *Heap) SetTearSeed(seed int64) {
	h.shadowMu.Lock()
	defer h.shadowMu.Unlock()
	if seed == 0 {
		h.tearRnd = nil
	} else {
		h.tearRnd = rand.New(rand.NewSource(seed))
	}
}

// Crashed reports whether a simulated crash has been applied to this
// mapping; after that the heap must be closed and reopened.
func (h *Heap) Crashed() bool {
	h.shadowMu.Lock()
	defer h.shadowMu.Unlock()
	return h.crashed
}

// Crash applies the crash model to this heap immediately, as if power
// were lost at this instant, without routing through a fail-point. A
// real power failure takes the whole machine, not one device: multi-heap
// crash sweeps (the sharded 2PC matrix) use it to cut power to every
// other heap the moment one heap's fail-point fires, so un-persisted
// state is lost everywhere at once. No-op in optimistic mode. Idempotent.
func (h *Heap) Crash() { h.applyCrash() }

// DirtyLines counts cache lines whose mapped contents differ from the
// durable image — writes not yet covered by a persist barrier. Only
// meaningful in shadow mode (0 otherwise).
func (h *Heap) DirtyLines() uint64 {
	if h.shadow == nil {
		return 0
	}
	h.shadowMu.Lock()
	defer h.shadowMu.Unlock()
	var n uint64
	mem := h.m().mem
	bound := h.scanBound()
	for off := uint64(0); off < bound; off += CacheLineSize {
		if !bytes.Equal(mem[off:off+CacheLineSize], h.shadow[off:off+CacheLineSize]) {
			n++
		}
	}
	return n
}

// flushRange is a line-aligned byte range queued by Flush and published
// to the durable image by the next successful Fence.
type flushRange struct{ first, end uint64 }

// addPending queues the flushed line range [first, end) for publication
// at the next fence. Called from Flush; the range is NOT durable yet.
func (h *Heap) addPending(first, end uint64) {
	if size := h.m().size; end > size {
		end = size
	}
	h.shadowMu.Lock()
	if !h.crashed {
		h.pending = append(h.pending, flushRange{first, end})
	}
	h.shadowMu.Unlock()
}

// publishPending copies every queued flushed range into the durable
// image. Called from Fence after the crash check passed; a crash at the
// fence therefore drops the queue on the floor (see applyCrash), exactly
// as real hardware loses flushes that no fence ordered.
func (h *Heap) publishPending() {
	h.shadowMu.Lock()
	if !h.crashed {
		// The current mapping sees every store regardless of which mapping
		// it went through: all mappings are MAP_SHARED views of one file.
		mem := h.m().mem
		for _, r := range h.pending {
			copy(h.shadow[r.first:r.end], mem[r.first:r.end])
		}
	}
	h.pending = h.pending[:0]
	h.shadowMu.Unlock()
}

// applyCrash makes the mapping equal to what real NVM would hold after a
// power failure at this instant, then lets the ErrSimulatedCrash panic
// unwind. No-op in optimistic mode. Idempotent; once applied, later
// publishes are suppressed so post-"power-loss" stores cannot leak into
// the durable image.
func (h *Heap) applyCrash() {
	if h.shadow == nil {
		return
	}
	h.shadowMu.Lock()
	defer h.shadowMu.Unlock()
	if h.crashed {
		return
	}
	h.crashed = true
	// Flushes never covered by a fence die with the caches.
	h.pending = nil
	mem := h.m().mem
	bound := h.scanBound()
	for off := uint64(0); off < bound; off += CacheLineSize {
		m := mem[off : off+CacheLineSize]
		s := h.shadow[off : off+CacheLineSize]
		if bytes.Equal(m, s) {
			continue
		}
		if h.tearRnd == nil {
			copy(m, s) // pure loss: the whole line never left the cache
			continue
		}
		// Tear: each aligned 8-byte word of the dirty line independently
		// made it back to NVM or did not.
		for w := 0; w < CacheLineSize; w += 8 {
			if h.tearRnd.Intn(2) == 0 {
				copy(m[w:w+8], s[w:w+8])
			}
		}
	}
}

// restoreCrashImage re-copies the frozen durable image over the mapping
// just before Close munmaps it. After applyCrash, stores made while the
// panic unwinds (or by stragglers) still land in the file-backed mapping
// directly; without this, those post-"power-loss" bytes would reach the
// backing file. No-op unless a crash was applied.
func (h *Heap) restoreCrashImage() {
	if h.shadow == nil {
		return
	}
	h.shadowMu.Lock()
	defer h.shadowMu.Unlock()
	if !h.crashed {
		return
	}
	bound := h.scanBound()
	copy(h.m().mem[:bound], h.shadow[:bound])
}

// scanBound returns the exclusive upper bound of bytes any store can
// have touched: the current (possibly not yet durable) arena watermark,
// line-aligned and clamped to the heap. Everything beyond it is
// untouched zeros in both buffers. Caller holds shadowMu or tolerates a
// racing watermark read.
func (h *Heap) scanBound() uint64 {
	// blockHeaderSize of slack: bump initializes the next block's header
	// just beyond the watermark before advancing it.
	bound := h.u64(hdrArenaNext) + blockHeaderSize
	if bound < arenaStart {
		bound = arenaStart
	}
	if size := h.m().size; bound > size {
		bound = size
	}
	return alignUp(bound, CacheLineSize)
}
