package protocheck

import (
	"go/ast"
	"go/token"
	"go/types"
)

// stateSet is a finite set of abstract states: one element per
// distinguishable execution path through the function so far. Keeping a
// *set* (instead of joining into one lattice value) is what lets the
// checks correlate facts across branches — a state that took the
// `coord == nil` branch stays separate from one that recorded a
// decision, so the ModeLog no-coordinator path never pollutes the
// crash-atomic path with false positives.
type stateSet[S comparable] map[S]bool

func union[S comparable](a, b stateSet[S]) stateSet[S] {
	out := stateSet[S]{}
	for s := range a {
		out[s] = true
	}
	for s := range b {
		out[s] = true
	}
	return out
}

// pathWalker evaluates one function body over a stateSet,
// path-sensitively. It is an abstract interpreter over the statement
// shapes that appear on commit paths, with three deliberate
// approximations:
//
//   - loops execute at least once (once and twice are both walked, so
//     loop-carried phase transitions are observed; the zero-iteration
//     path is excluded because prepare/finish loops run over the writer
//     set, which the surrounding code guarantees non-empty);
//   - `go` statements and defers are not modeled (their bodies run at
//     an unknown point in the barrier order);
//   - function literals are opaque (calls inside them are attributed to
//     nothing).
//
// The err-check idiom `if err := x.Call(...); err != nil { ... }` is
// modeled precisely when isEvent(call) holds: the then-branch sees the
// pre-call states (the call failed, so its durable effect must be
// assumed absent) while the fall-through sees the post-call states.
type pathWalker[S comparable] struct {
	info *types.Info

	// apply runs the checks for one call against the incoming states
	// and returns the transformed states. It is invoked exactly once
	// per syntactic visit of the call.
	apply func(call *ast.CallExpr, in stateSet[S]) stateSet[S]
	// isEvent reports whether call warrants err-shape failure modeling.
	isEvent func(call *ast.CallExpr) bool
	// refine filters/updates states entering a branch guarded by cond
	// (then reports which arm). nil means no condition refinement.
	refine func(cond ast.Expr, then bool, in stateSet[S]) stateSet[S]
	// atReturn runs the end-of-path checks. The return's result
	// expressions have already been applied.
	atReturn func(ret *ast.ReturnStmt, in stateSet[S])
}

// walkBody interprets the whole body and runs atReturn(nil) checks on
// the implicit fall-off-the-end return, when any path reaches it.
func (w *pathWalker[S]) walkBody(body *ast.BlockStmt, in stateSet[S]) {
	out := w.stmt(body, in)
	if len(out) > 0 && w.atReturn != nil {
		w.atReturn(nil, out)
	}
}

// exprCalls applies every call expression syntactically inside e, in
// traversal order, skipping function literals.
func (w *pathWalker[S]) exprCalls(e ast.Expr, in stateSet[S]) stateSet[S] {
	if e == nil {
		return in
	}
	var calls []*ast.CallExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, call)
		}
		return true
	})
	for _, call := range calls {
		in = w.apply(call, in)
	}
	return in
}

// stmt returns the fall-through states of s; an empty set means no path
// falls through (every path returned, panicked or branched away).
func (w *pathWalker[S]) stmt(s ast.Stmt, in stateSet[S]) stateSet[S] {
	if len(in) == 0 || s == nil {
		return in
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			in = w.stmt(st, in)
		}
		return in
	case *ast.ExprStmt:
		return w.exprCalls(s.X, in)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			in = w.exprCalls(r, in)
		}
		return in
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						in = w.exprCalls(v, in)
					}
				}
			}
		}
		return in
	case *ast.IfStmt:
		return w.ifStmt(s, in)
	case *ast.ForStmt:
		in = w.stmt(s.Init, in)
		in = w.exprCalls(s.Cond, in)
		return w.loop(s.Body, in)
	case *ast.RangeStmt:
		in = w.exprCalls(s.X, in)
		return w.loop(s.Body, in)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			in = w.exprCalls(r, in)
		}
		if w.atReturn != nil {
			w.atReturn(s, in)
		}
		return stateSet[S]{}
	case *ast.BranchStmt:
		// break/continue/goto leave the linear flow; the loop re-walk
		// covers the states they carry.
		return stateSet[S]{}
	case *ast.SwitchStmt:
		in = w.stmt(s.Init, in)
		in = w.exprCalls(s.Tag, in)
		return w.clauses(s.Body, in)
	case *ast.TypeSwitchStmt:
		in = w.stmt(s.Init, in)
		return w.clauses(s.Body, in)
	case *ast.SelectStmt:
		return w.clauses(s.Body, in)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, in)
	case *ast.GoStmt, *ast.DeferStmt:
		return in
	default:
		return in
	}
}

// loop walks a loop body from in once and then once more from the first
// pass's fall-through (plus in, for paths that branch back early), so
// loop-carried state transitions are observed. The union of both
// passes' fall-throughs is the loop's out-state; the zero-iteration
// path is deliberately excluded (see the pathWalker contract).
func (w *pathWalker[S]) loop(body *ast.BlockStmt, in stateSet[S]) stateSet[S] {
	once := w.stmt(body, in)
	twice := w.stmt(body, union(once, in))
	return union(once, twice)
}

// clauses joins every clause body of a switch/select; a missing default
// keeps the incoming states as an extra fall-through arm.
func (w *pathWalker[S]) clauses(body *ast.BlockStmt, in stateSet[S]) stateSet[S] {
	out := stateSet[S]{}
	hasDefault := false
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			if cs.List == nil {
				hasDefault = true
			}
			for _, e := range cs.List {
				in = w.exprCalls(e, in)
			}
			stmts = cs.Body
		case *ast.CommClause:
			if cs.Comm == nil {
				hasDefault = true
			}
			stmts = cs.Body
		}
		arm := in
		for _, st := range stmts {
			arm = w.stmt(st, arm)
		}
		out = union(out, arm)
	}
	if !hasDefault {
		out = union(out, in)
	}
	return out
}

func (w *pathWalker[S]) ifStmt(s *ast.IfStmt, in stateSet[S]) stateSet[S] {
	// The err-check idiom around a protocol event call.
	if as, ok := s.Init.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok &&
			w.isEvent != nil && w.isEvent(call) && isErrNotNil(w.info, s.Cond, as.Lhs[0]) {
			fallIn := w.apply(call, in) // checks run once, against pre-call states
			thenOut := w.stmt(s.Body, in)
			elseOut := fallIn
			if s.Else != nil {
				elseOut = w.stmt(s.Else, fallIn)
			}
			return union(thenOut, elseOut)
		}
	}
	in = w.stmt(s.Init, in)
	in = w.exprCalls(s.Cond, in)
	thenIn, elseIn := in, in
	if w.refine != nil {
		thenIn = w.refine(s.Cond, true, in)
		elseIn = w.refine(s.Cond, false, in)
	}
	thenOut := w.stmt(s.Body, thenIn)
	elseOut := elseIn
	if s.Else != nil {
		elseOut = w.stmt(s.Else, elseIn)
	}
	return union(thenOut, elseOut)
}

// isErrNotNil reports whether cond is `e != nil` for the identifier
// assigned by lhs.
func isErrNotNil(info *types.Info, cond ast.Expr, lhs ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return false
	}
	lid, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	x, ok := ast.Unparen(be.X).(*ast.Ident)
	if !ok {
		return false
	}
	y, ok := ast.Unparen(be.Y).(*ast.Ident)
	if !ok || y.Name != "nil" {
		return false
	}
	xo := info.Uses[x]
	lo := info.Defs[lid]
	if lo == nil {
		lo = info.Uses[lid]
	}
	return xo != nil && xo == lo
}
