// Command nvmcheck runs the repo's static-analysis suite: seven
// per-package analyzers that enforce the NVM crash-consistency
// discipline, the concurrency discipline around it, and the
// network-protocol hygiene rules at compile time — plus, with
// -wholeprogram, two whole-program analyzers (protocheck,
// recoverycheck) that verify the cross-package 2PC barrier protocol and
// commit/recovery symmetry over the module-wide resolved callgraph.
//
// Usage:
//
//	go run ./cmd/nvmcheck [-l] [-wholeprogram] [-tags list] [-stats]
//	    [-selfcheck] [-json] [-baseline file] [-budget d] [packages]
//
// With no arguments it checks ./... . Diagnostics print one per line as
// file:line:col: message [analyzer], sorted by (file, line, analyzer,
// message) so output and baselines are byte-stable across runs and
// package-load orders; the exit status is 1 when any diagnostic
// survives suppression filtering. Suppress a finding with a reasoned
// comment on (or directly above) the reported line:
//
//	//nvmcheck:ignore <analyzer> <reason>
//
// persistcheck and publishcheck additionally honor a function-level
// //nvm:nopersist <reason> annotation for functions whose contract is
// that the caller persists — and persistcheck reports the annotation
// itself when the flow analysis proves it unnecessary.
//
// -tags passes build constraints through to the loader, so the
// crosscheck harness can analyze the deliberately broken protocol
// variants gated behind the crosscheck_* tags.
//
// -json prints the surviving findings as a JSON array of
// {analyzer, file, line, col, message} objects with repo-relative
// paths, suitable for committing as a baseline. -baseline <file> loads
// such an array and reports (and fails on) only findings not in it, so
// CI can gate on *new* findings while a known set is being worked down.
//
// -stats prints a per-analyzer table of raised findings, reasoned
// suppressions and wall-clock, the points-to layer's resolution
// metrics, and (under -wholeprogram) the callgraph size — so
// suppression debt, analysis blind spots and the analysis-time budget
// all stay visible. -budget fails the run when loading plus analysis
// exceeds the given duration (CI uses 5m for the whole-program step).
//
// -selfcheck scans every package — including the analysis framework,
// which the regular run exempts — for suppression comments lacking the
// mandatory reason, and verifies the points-to layer's
// dynamic call-site resolution rate against a regression floor; either
// failure fails the build.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hyrisenv/internal/analysis"
	"hyrisenv/internal/analysis/deadlinecheck"
	"hyrisenv/internal/analysis/lockcheck"
	"hyrisenv/internal/analysis/persistcheck"
	"hyrisenv/internal/analysis/pptrcheck"
	"hyrisenv/internal/analysis/protocheck"
	"hyrisenv/internal/analysis/ptr"
	"hyrisenv/internal/analysis/publishcheck"
	"hyrisenv/internal/analysis/recoverycheck"
	"hyrisenv/internal/analysis/sharecheck"
	"hyrisenv/internal/analysis/wirecodecheck"
)

// Suite is the per-package analyzer suite, in the order findings are
// most useful to read: durability first, then concurrency, then
// aliasing, then protocol.
var Suite = []*analysis.Analyzer{
	persistcheck.Analyzer,
	publishcheck.Analyzer,
	lockcheck.Analyzer,
	sharecheck.Analyzer,
	pptrcheck.Analyzer,
	wirecodecheck.Analyzer,
	deadlinecheck.Analyzer,
}

// ProgSuite is the whole-program suite, run only under -wholeprogram:
// these analyzers see every loaded package at once through the
// module-wide resolved callgraph.
var ProgSuite = []*analysis.ProgramAnalyzer{
	protocheck.Analyzer,
	recoverycheck.Analyzer,
}

// minResolutionRate is the -selfcheck regression floor for the
// points-to layer's dynamic call-site resolution. The whole-program
// analyzers' callgraph edges come from this resolution, so a silent
// drop would quietly blind protocheck/recoverycheck to dynamic calls;
// the floor pins the measured rate (354/432 ≈ 0.82 at the time it was
// set) with headroom for benign churn. It is only enforced when the
// run covers enough call sites to make the ratio meaningful.
const (
	minResolutionRate  = 0.78
	minResolutionSites = 100
)

// A finding is the JSON form of one diagnostic, with a repo-relative
// path so baselines commit cleanly.
type finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (f finding) key() string {
	return fmt.Sprintf("%s\x00%s\x00%d\x00%s", f.Analyzer, f.File, f.Line, f.Message)
}

func (f finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}

func main() {
	list := flag.Bool("l", false, "list the analyzers in the suite and exit")
	whole := flag.Bool("wholeprogram", false, "additionally run the whole-program analyzers (protocheck, recoverycheck) over the module-wide callgraph")
	tags := flag.String("tags", "", "comma-separated build tags passed to the package loader")
	stats := flag.Bool("stats", false, "print per-analyzer finding/suppression/wall-clock counts and points-to resolution metrics")
	selfcheck := flag.Bool("selfcheck", false, "fail on reasonless //nvmcheck:ignore comments anywhere and on a points-to resolution-rate regression")
	jsonOut := flag.Bool("json", false, "print findings as JSON (repo-relative paths)")
	baseline := flag.String("baseline", "", "JSON findings file; only findings not in it are reported and fail the run")
	budget := flag.Duration("budget", 0, "fail if loading plus analysis exceeds this duration (0 disables)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: nvmcheck [-l] [-wholeprogram] [-tags list] [-stats] [-selfcheck] [-json] [-baseline file] [-budget d] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range Suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		for _, a := range ProgSuite {
			fmt.Printf("%-14s [whole-program] %s\n", a.Name, a.Doc)
		}
		return
	}

	start := time.Now()
	patterns := flag.Args()
	var loadTags []string
	if *tags != "" {
		loadTags = strings.Split(*tags, ",")
	}
	pkgs, err := analysis.LoadTags("", loadTags, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvmcheck:", err)
		os.Exit(2)
	}

	// The analysis framework and its fixtures exercise the rules
	// deliberately; checking them would flag the fixture bugs.
	var targets []*analysis.Package
	for _, p := range pkgs {
		if isAnalysisPath(p.PkgPath) {
			continue
		}
		targets = append(targets, p)
	}

	if *selfcheck {
		diags := analysis.ReasonlessSuppressions(pkgs)
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "nvmcheck: %d reasonless suppression(s)\n", len(diags))
			os.Exit(1)
		}
		ps := ptrStats(targets)
		if ps.CallSites >= minResolutionSites {
			rate := float64(ps.Resolved) / float64(ps.CallSites)
			if rate < minResolutionRate {
				fmt.Fprintf(os.Stderr,
					"nvmcheck: points-to resolution regressed: %d/%d dynamic call sites (%.1f%%) below the %.0f%% floor — the whole-program callgraph is losing edges\n",
					ps.Resolved, ps.CallSites, 100*rate, 100*minResolutionRate)
				os.Exit(1)
			}
			fmt.Printf("points-to resolution: %d/%d call sites (%.1f%%, floor %.0f%%)\n",
				ps.Resolved, ps.CallSites, 100*rate, 100*minResolutionRate)
		}
		return
	}

	res, err := analysis.RunDetailed(targets, Suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvmcheck:", err)
		os.Exit(2)
	}
	if *whole {
		progRes, err := analysis.RunProgram(analysis.NewProgram(targets), ProgSuite)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nvmcheck:", err)
			os.Exit(2)
		}
		res.Diags = append(res.Diags, progRes.Diags...)
		analysis.SortDiagnostics(res.Diags)
		for name, n := range progRes.Raw {
			res.Raw[name] = n
		}
		for name, n := range progRes.Suppressed {
			res.Suppressed[name] = n
		}
		for name, d := range progRes.Elapsed {
			res.Elapsed[name] = d
		}
	}
	elapsed := time.Since(start)

	wd, _ := os.Getwd()
	findings := make([]finding, 0, len(res.Diags))
	for _, d := range res.Diags {
		findings = append(findings, finding{
			Analyzer: d.Analyzer,
			File:     relFile(wd, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}

	noun := "finding"
	if *baseline != "" {
		old, err := loadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nvmcheck:", err)
			os.Exit(2)
		}
		findings = subtract(findings, old)
		noun = "new finding"
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "nvmcheck:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}

	if *stats {
		fmt.Printf("%-14s %9s %10s %12s\n", "analyzer", "findings", "suppressed", "wall-clock")
		printRow := func(name string) {
			fmt.Printf("%-14s %9d %10d %12s\n",
				name, res.Raw[name], res.Suppressed[name],
				res.Elapsed[name].Round(time.Millisecond))
		}
		for _, a := range Suite {
			printRow(a.Name)
		}
		if *whole {
			for _, a := range ProgSuite {
				printRow(a.Name)
			}
		}
		ps := ptrStats(targets)
		fmt.Printf("points-to: %d/%d dynamic call sites resolved, %d allocation sites (%d NVM, %d volatile)\n",
			ps.Resolved, ps.CallSites, ps.AllocSites, ps.NVMAlloc, ps.Volatile)
		fmt.Printf("total: %d package(s) loaded and analyzed in %s\n",
			len(targets), elapsed.Round(time.Millisecond))
	}
	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(os.Stderr, "nvmcheck: analysis took %s, over the %s budget\n",
			elapsed.Round(time.Millisecond), *budget)
		os.Exit(1)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "nvmcheck: %d %s(s)\n", len(findings), noun)
		os.Exit(1)
	}
}

// ptrStats aggregates the points-to layer's metrics over the target
// packages.
func ptrStats(targets []*analysis.Package) ptr.Stats {
	var ps ptr.Stats
	for _, p := range targets {
		s := ptr.For(p).Stats()
		ps.CallSites += s.CallSites
		ps.Resolved += s.Resolved
		ps.Unresolved += s.Unresolved
		ps.AllocSites += s.AllocSites
		ps.NVMAlloc += s.NVMAlloc
		ps.Volatile += s.Volatile
	}
	return ps
}

// relFile makes filename repo-relative when it lies under the working
// directory, so baselines are stable across checkouts.
func relFile(wd, filename string) string {
	if wd == "" {
		return filename
	}
	if rel, err := filepath.Rel(wd, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filename
}

// loadBaseline reads a -json findings file.
func loadBaseline(path string) ([]finding, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var fs []finding
	if err := json.Unmarshal(data, &fs); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return fs, nil
}

// subtract removes baseline findings from cur, multiset-style: two
// identical findings in cur survive a baseline that lists one.
func subtract(cur, baseline []finding) []finding {
	have := map[string]int{}
	for _, f := range baseline {
		have[f.key()]++
	}
	out := cur[:0:0]
	for _, f := range cur {
		if have[f.key()] > 0 {
			have[f.key()]--
			continue
		}
		out = append(out, f)
	}
	return out
}

// isAnalysisPath reports whether pkgPath belongs to the analysis suite
// itself (framework, analyzers, or this command).
func isAnalysisPath(pkgPath string) bool {
	const (
		pkg = "hyrisenv/internal/analysis"
		cmd = "hyrisenv/cmd/nvmcheck"
	)
	return pkgPath == pkg || pkgPath == cmd ||
		len(pkgPath) > len(pkg) && pkgPath[:len(pkg)+1] == pkg+"/"
}
