package server_test

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"hyrisenv"
	"hyrisenv/client"
	"hyrisenv/internal/core"
	"hyrisenv/internal/disk"
	"hyrisenv/internal/server"
	"hyrisenv/internal/shard"
	"hyrisenv/internal/storage"
	"hyrisenv/internal/txn"
	"hyrisenv/internal/wire"
)

// openEngine opens an engine in t.TempDir and registers no cleanup: the
// tests own the close order (server first, then engine).
func openEngine(t *testing.T, mode txn.Mode, model disk.Model) *shard.Engine {
	t.Helper()
	eng, err := shard.Open(shard.Config{Config: core.Config{
		Mode:        mode,
		Dir:         t.TempDir(),
		NVMHeapSize: 64 << 20,
		DiskModel:   model,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func startServer(t *testing.T, eng *shard.Engine, cfg server.Config) *server.Server {
	t.Helper()
	srv, err := server.Listen(eng, "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return srv
}

func dialClient(t *testing.T, addr string, opts client.Options) *client.Client {
	t.Helper()
	c, err := client.Dial(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

var testCols = []hyrisenv.Column{
	{Name: "id", Type: hyrisenv.Int64},
	{Name: "name", Type: hyrisenv.String},
	{Name: "score", Type: hyrisenv.Float64},
}

// TestEndToEnd drives the full protocol surface through the public
// client against a real TCP server.
func TestEndToEnd(t *testing.T) {
	eng := openEngine(t, txn.ModeNone, disk.Model{})
	srv := startServer(t, eng, server.Config{})
	c := dialClient(t, srv.Addr(), client.Options{})

	if c.Mode() != hyrisenv.Volatile {
		t.Fatalf("handshake mode = %v, want Volatile", c.Mode())
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	// DDL, including the duplicate-table error path.
	if err := c.CreateTable("users", testCols, "id"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("users", testCols); !errors.Is(err, client.ErrTableExists) {
		t.Fatalf("duplicate create: got %v, want ErrTableExists", err)
	}

	// Transactional writes with read-your-writes inside the txn.
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	row, err := tx.Insert("users", hyrisenv.Int(1), hyrisenv.Str("alice"), hyrisenv.Float(9.5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("users", hyrisenv.Int(2), hyrisenv.Str("bob"), hyrisenv.Float(4.0)); err != nil {
		t.Fatal(err)
	}
	if n, err := tx.Count("users"); err != nil || n != 2 {
		t.Fatalf("in-txn count = %d, %v; want 2", n, err)
	}
	// Isolation: auto-commit reads snapshot the committed horizon and
	// must not see the open transaction's rows.
	if n, err := c.Count("users"); err != nil || n != 0 {
		t.Fatalf("outside count = %d, %v; want 0 before commit", n, err)
	}
	cidBefore := tx.SnapshotCID()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Count("users"); err != nil || n != 2 {
		t.Fatalf("count = %d, %v; want 2 after commit", n, err)
	}

	// Point lookup round-trips typed values.
	vals, err := c.Row("users", row)
	if err != nil {
		t.Fatal(err)
	}
	if got := vals[1].S; got != "alice" {
		t.Fatalf("row name = %q, want alice", got)
	}
	if got := vals[2].F; got != 9.5 {
		t.Fatalf("row score = %v, want 9.5", got)
	}

	// Predicates and ranges.
	ids, err := c.Select("users", hyrisenv.Pred{Col: "name", Op: hyrisenv.Eq, Val: hyrisenv.Str("bob")})
	if err != nil || len(ids) != 1 {
		t.Fatalf("select bob: %v, %v", ids, err)
	}
	ids, err = c.SelectRange("users", "id", hyrisenv.Int(1), hyrisenv.Int(2))
	if err != nil || len(ids) != 1 {
		t.Fatalf("range [1,2): %v, %v", ids, err)
	}
	if _, err := c.Select("users", hyrisenv.Pred{Col: "nope", Op: hyrisenv.Eq, Val: hyrisenv.Int(0)}); !errors.Is(err, client.ErrBadColumn) {
		t.Fatalf("bad column: got %v", err)
	}
	if _, err := c.Count("ghosts"); !errors.Is(err, client.ErrNoSuchTable) {
		t.Fatalf("missing table: got %v", err)
	}

	// Update + delete, then time travel back before both.
	tx2, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Update("users", row, hyrisenv.Int(1), hyrisenv.Str("alice2"), hyrisenv.Float(1.0)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	old, err := c.BeginAt(cidBefore)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := old.Count("users"); err != nil || n != 0 {
		t.Fatalf("time travel count = %d, %v; want 0", n, err)
	}
	if _, err := old.Insert("users", hyrisenv.Int(9), hyrisenv.Str("x"), hyrisenv.Float(0)); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("write in read-only txn: got %v", err)
	}
	if err := old.Abort(); err != nil {
		t.Fatal(err)
	}

	// Write-write conflict surfaces as ErrConflict and aborts the loser.
	txA, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	txB, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	cur, err := c.Select("users", hyrisenv.Pred{Col: "id", Op: hyrisenv.Eq, Val: hyrisenv.Int(1)})
	if err != nil || len(cur) != 1 {
		t.Fatalf("locate row: %v, %v", cur, err)
	}
	if _, err := txA.Update("users", cur[0], hyrisenv.Int(1), hyrisenv.Str("a"), hyrisenv.Float(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := txB.Update("users", cur[0], hyrisenv.Int(1), hyrisenv.Str("b"), hyrisenv.Float(0)); !errors.Is(err, client.ErrConflict) {
		t.Fatalf("conflicting update: got %v", err)
	}
	if err := txA.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := txB.Abort(); err != nil {
		t.Fatal(err)
	}

	// Unknown transaction handles are rejected per request.
	if err := c.CreateTable("t2", testCols); err != nil {
		t.Fatal(err)
	}
	tx3, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); !errors.Is(err, client.ErrTxDone) {
		t.Fatalf("double commit: got %v", err)
	}

	// Catalog and stats.
	tables, err := c.Tables()
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, tb := range tables {
		names[tb.Name] = true
	}
	if !names["users"] || !names["t2"] {
		t.Fatalf("tables = %+v", tables)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != hyrisenv.Volatile || st.Uptime <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestConcurrentClients hammers one server from many pooled connections
// mixing writers and readers; meant to run under -race.
func TestConcurrentClients(t *testing.T) {
	eng := openEngine(t, txn.ModeNone, disk.Model{})
	srv := startServer(t, eng, server.Config{})
	c := dialClient(t, srv.Addr(), client.Options{PoolSize: 16})

	if err := c.CreateTable("events", testCols, "id"); err != nil {
		t.Fatal(err)
	}

	const workers = 16
	const perWorker = 25
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx, err := c.Begin()
				if err != nil {
					errCh <- err
					return
				}
				id := int64(w*perWorker + i)
				if _, err := tx.Insert("events", hyrisenv.Int(id), hyrisenv.Str("w"), hyrisenv.Float(0)); err != nil {
					errCh <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errCh <- err
					return
				}
				if _, err := c.Count("events", hyrisenv.Pred{Col: "id", Op: hyrisenv.Le, Val: hyrisenv.Int(id)}); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if n, err := c.Count("events"); err != nil || n != workers*perWorker {
		t.Fatalf("count = %d, %v; want %d", n, err, workers*perWorker)
	}
}

// rawConn dials and handshakes at the frame level, for tests below the
// client abstraction.
type rawConn struct {
	t     *testing.T
	nc    net.Conn
	reqID uint64
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	rc := &rawConn{t: t, nc: nc}
	f := rc.roundTrip(wire.TypeHello, wire.Hello{Version: wire.Version}.Encode(), 0)
	if f.Type != wire.TypeHelloOK {
		t.Fatalf("handshake reply %s", f.Type)
	}
	return rc
}

func (rc *rawConn) roundTrip(t wire.Type, payload []byte, timeoutMs uint32) wire.Frame {
	rc.t.Helper()
	rc.reqID++
	rc.nc.SetDeadline(time.Now().Add(10 * time.Second))
	if err := wire.WriteFrame(rc.nc, wire.Frame{Type: t, ReqID: rc.reqID, TimeoutMs: timeoutMs, Payload: payload}); err != nil {
		rc.t.Fatal(err)
	}
	f, err := wire.ReadFrame(rc.nc, 0)
	if err != nil {
		rc.t.Fatal(err)
	}
	if f.ReqID != rc.reqID {
		rc.t.Fatalf("response req id %d, want %d", f.ReqID, rc.reqID)
	}
	return f
}

func (rc *rawConn) expectErr(f wire.Frame, code uint16) wire.ErrorResp {
	rc.t.Helper()
	if f.Type != wire.TypeError {
		rc.t.Fatalf("got %s frame, want error", f.Type)
	}
	e, err := wire.DecodeErrorResp(f.Payload)
	if err != nil {
		rc.t.Fatal(err)
	}
	if e.Code != code {
		rc.t.Fatalf("error code %d (%s), want %d", e.Code, e.Msg, code)
	}
	return e
}

// TestRequestDeadline checks the satellite requirement: a request whose
// frame-header deadline expires server-side comes back as a structured
// CodeDeadline error on a healthy connection — not a hang, not a drop.
// The commit is made deterministically slow with a modeled 40 ms fsync.
func TestRequestDeadline(t *testing.T) {
	eng := openEngine(t, txn.ModeLog, disk.Model{SyncLatency: 40 * time.Millisecond})
	srv := startServer(t, eng, server.Config{})
	rc := dialRaw(t, srv.Addr())

	mkTable := wire.CreateTableReq{
		Name:    "d",
		Cols:    []wire.ColumnDef{{Name: "id", Type: uint8(storage.TypeInt64)}},
		Indexed: nil,
	}
	if f := rc.roundTrip(wire.TypeCreateTable, mkTable.Encode(), 0); f.Type != wire.TypeOK {
		t.Fatalf("create table: %s", f.Type)
	}
	f := rc.roundTrip(wire.TypeBegin, wire.BeginReq{}.Encode(), 0)
	if f.Type != wire.TypeBeginOK {
		t.Fatalf("begin: %s", f.Type)
	}
	ok, err := wire.DecodeBeginOK(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	ins := wire.InsertReq{Txn: ok.Txn, Table: "d", Vals: []storage.Value{storage.Int(1)}}
	if f := rc.roundTrip(wire.TypeInsert, ins.Encode(), 0); f.Type != wire.TypeRowID {
		t.Fatalf("insert: %s", f.Type)
	}

	// Commit with a 1 ms deadline: the 40 ms group-commit sync guarantees
	// the work finishes past its deadline, so the server must answer with
	// CodeDeadline.
	f = rc.roundTrip(wire.TypeCommit, wire.TxnReq{Txn: ok.Txn}.Encode(), 1)
	rc.expectErr(f, wire.CodeDeadline)

	// The connection survived and still serves requests.
	if f := rc.roundTrip(wire.TypePing, nil, 0); f.Type != wire.TypePong {
		t.Fatalf("ping after deadline: %s", f.Type)
	}

	// Client-side mapping: an already-expired context is reported as
	// context.DeadlineExceeded without touching the wire.
	c := dialClient(t, srv.Addr(), client.Options{})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if err := c.PingContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired ctx ping: got %v", err)
	}
}

// TestHandshakeRejections covers protocol-version and bad-first-frame
// refusals, plus the negotiation path for newer-than-us clients.
func TestHandshakeRejections(t *testing.T) {
	eng := openEngine(t, txn.ModeNone, disk.Model{})
	srv := startServer(t, eng, server.Config{})

	// A version below MinVersion is refused.
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	if err := wire.WriteFrame(nc, wire.Frame{Type: wire.TypeHello, ReqID: 1,
		Payload: wire.Hello{Version: 0}.Encode()}); err != nil {
		t.Fatal(err)
	}
	f, err := wire.ReadFrame(nc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.TypeError {
		t.Fatalf("version 0: got %s", f.Type)
	}
	e, _ := wire.DecodeErrorResp(f.Payload)
	if e.Code != wire.CodeBadRequest || !strings.Contains(e.Msg, "version") {
		t.Fatalf("version 0: %+v", e)
	}

	// A client claiming a newer version negotiates down to ours.
	nc99, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc99.Close()
	nc99.SetDeadline(time.Now().Add(5 * time.Second))
	if err := wire.WriteFrame(nc99, wire.Frame{Type: wire.TypeHello, ReqID: 1,
		Payload: wire.Hello{Version: 99}.Encode()}); err != nil {
		t.Fatal(err)
	}
	f, err = wire.ReadFrame(nc99, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.TypeHelloOK {
		t.Fatalf("version 99: got %s, want hello-ok", f.Type)
	}
	ok99, err := wire.DecodeHelloOK(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if ok99.Version != wire.Version {
		t.Fatalf("version 99 negotiated to %d, want %d", ok99.Version, wire.Version)
	}
	if ok99.MaxInFlight == 0 {
		t.Fatal("negotiated v2 hello-ok is missing MaxInFlight")
	}

	// A v1 client is accepted at version 1 and gets the historical
	// 7-byte hello-ok (no MaxInFlight).
	nc1, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc1.Close()
	nc1.SetDeadline(time.Now().Add(5 * time.Second))
	if err := wire.WriteFrame(nc1, wire.Frame{Type: wire.TypeHello, ReqID: 1,
		Payload: wire.Hello{Version: 1}.Encode()}); err != nil {
		t.Fatal(err)
	}
	f, err = wire.ReadFrame(nc1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.TypeHelloOK {
		t.Fatalf("version 1: got %s, want hello-ok", f.Type)
	}
	if len(f.Payload) != 7 {
		t.Fatalf("v1 hello-ok payload is %d bytes, want 7", len(f.Payload))
	}
	ok1, err := wire.DecodeHelloOK(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if ok1.Version != 1 || ok1.MaxInFlight != 0 {
		t.Fatalf("v1 hello-ok = %+v", ok1)
	}
	// The v1 connection still serves requests (depth-1 special case).
	if err := wire.WriteFrame(nc1, wire.Frame{Type: wire.TypePing, ReqID: 2}); err != nil {
		t.Fatal(err)
	}
	f, err = wire.ReadFrame(nc1, 0)
	if err != nil || f.Type != wire.TypePong {
		t.Fatalf("v1 ping: %s, %v", f.Type, err)
	}

	// First frame is not a hello.
	nc2, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	nc2.SetDeadline(time.Now().Add(5 * time.Second))
	if err := wire.WriteFrame(nc2, wire.Frame{Type: wire.TypePing, ReqID: 1}); err != nil {
		t.Fatal(err)
	}
	f, err = wire.ReadFrame(nc2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.TypeError {
		t.Fatalf("ping before hello: got %s", f.Type)
	}
}

// TestMaxConns checks that connections over the limit are refused with a
// structured error frame rather than silently dropped.
func TestMaxConns(t *testing.T) {
	eng := openEngine(t, txn.ModeNone, disk.Model{})
	srv := startServer(t, eng, server.Config{MaxConns: 2})

	rc1 := dialRaw(t, srv.Addr())
	rc2 := dialRaw(t, srv.Addr())
	_ = rc1
	_ = rc2

	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	f, err := wire.ReadFrame(nc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.TypeError {
		t.Fatalf("over-limit conn: got %s frame", f.Type)
	}
	e, _ := wire.DecodeErrorResp(f.Payload)
	if e.Code != wire.CodeShuttingDown || !strings.Contains(e.Msg, "limit") {
		t.Fatalf("over-limit conn: %+v", e)
	}
}

// TestFrameLimits checks both directions of the MaxFrame bound: an
// oversized response is replaced by a CodeTooLarge error frame on a
// healthy connection, and an oversized request drops the connection.
func TestFrameLimits(t *testing.T) {
	eng := openEngine(t, txn.ModeNone, disk.Model{})
	srv := startServer(t, eng, server.Config{MaxFrame: 2048})
	c := dialClient(t, srv.Addr(), client.Options{})

	if err := c.CreateTable("big", testCols); err != nil {
		t.Fatal(err)
	}
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// ~500 rows of row IDs (~4 KB encoded) overflow a 2 KiB reply frame.
	for i := 0; i < 500; i++ {
		if _, err := tx.Insert("big", hyrisenv.Int(int64(i)), hyrisenv.Str("x"), hyrisenv.Float(0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	_, err = c.ScanAll("big")
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeTooLarge {
		t.Fatalf("oversize response: got %v", err)
	}
	// Counts aggregate server-side and still fit.
	if n, err := c.Count("big"); err != nil || n != 500 {
		t.Fatalf("count = %d, %v", n, err)
	}

	// An oversized request cannot be parsed safely; the server closes the
	// connection and the client reports a transport error.
	tx2, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	huge := strings.Repeat("p", 4096)
	if _, err := tx2.Insert("big", hyrisenv.Int(1), hyrisenv.Str(huge), hyrisenv.Float(0)); err == nil {
		t.Fatal("oversize request: want transport error, got nil")
	}
}

// TestConnDropAbortsTxns checks that a dropped connection releases its
// transactions' row locks (the server-side registry cleanup).
func TestConnDropAbortsTxns(t *testing.T) {
	eng := openEngine(t, txn.ModeNone, disk.Model{})
	srv := startServer(t, eng, server.Config{})

	c := dialClient(t, srv.Addr(), client.Options{})
	if err := c.CreateTable("locks", testCols); err != nil {
		t.Fatal(err)
	}
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	row, err := tx.Insert("locks", hyrisenv.Int(1), hyrisenv.Str("a"), hyrisenv.Float(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// A raw connection takes the row lock, then vanishes without abort.
	rc := dialRaw(t, srv.Addr())
	f := rc.roundTrip(wire.TypeBegin, wire.BeginReq{}.Encode(), 0)
	ok, err := wire.DecodeBeginOK(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	upd := wire.UpdateReq{Txn: ok.Txn, Table: "locks", Row: row,
		Vals: []storage.Value{storage.Int(1), storage.Str("locked"), storage.Float(0)}}
	if f := rc.roundTrip(wire.TypeUpdate, upd.Encode(), 0); f.Type != wire.TypeRowID {
		t.Fatalf("update: %s", f.Type)
	}
	rc.nc.Close()

	// Once the server notices the hangup it aborts the orphan, releasing
	// the lock so this update stops conflicting.
	deadline := time.Now().Add(5 * time.Second)
	for {
		tx2, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		_, err = tx2.Update("locks", row, hyrisenv.Int(1), hyrisenv.Str("b"), hyrisenv.Float(0))
		if err == nil {
			if err := tx2.Commit(); err != nil {
				t.Fatal(err)
			}
			break
		}
		tx2.Abort()
		if !errors.Is(err, client.ErrConflict) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("orphaned transaction still holds its lock")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The orphan's own update must not have become visible.
	vals, err := c.Row("locks", row)
	if err == nil && vals[1].S == "locked" {
		t.Fatal("uncommitted update from dropped connection is visible")
	}
}

// TestGracefulShutdown checks the drain path end to end: idle and
// in-transaction connections are drained, open transactions aborted,
// and the engine close afterwards is idempotent under concurrency
// (the satellite hardening of DB.Close/Engine.Close).
func TestGracefulShutdown(t *testing.T) {
	eng := openEngine(t, txn.ModeNone, disk.Model{})
	srv, err := server.Listen(eng, "127.0.0.1:0", server.Config{})
	if err != nil {
		t.Fatal(err)
	}

	c, err := client.Dial(srv.Addr(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTable("drain", testCols); err != nil {
		t.Fatal(err)
	}
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("drain", hyrisenv.Int(1), hyrisenv.Str("x"), hyrisenv.Float(0)); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if srv.NumConns() != 0 {
		t.Fatalf("NumConns = %d after shutdown", srv.NumConns())
	}
	// New connections are refused after shutdown.
	if _, err := client.Dial(srv.Addr(), client.Options{DialTimeout: time.Second}); err == nil {
		t.Fatal("dial after shutdown succeeded")
	}

	// The engine survived the drain (caller owns it) and the in-flight
	// transaction was aborted: its row never became visible.
	etx := eng.Begin()
	tbl, err := eng.Table("drain")
	if err != nil {
		t.Fatal(err)
	}
	if rows, err := etx.Select(context.Background(), tbl); err != nil {
		t.Fatal(err)
	} else if len(rows) != 0 {
		t.Fatalf("aborted txn left %d visible rows", len(rows))
	}
	etx.Abort()

	// Concurrent Close calls all succeed and agree (sync.Once path).
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = eng.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent close %d: %v", i, err)
		}
	}
	if !eng.Closed() {
		t.Fatal("engine not marked closed")
	}
	if _, err := eng.CreateTable("late", workloadSchema(t)); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("create after close: got %v", err)
	}
}

func workloadSchema(t *testing.T) storage.Schema {
	t.Helper()
	sch, err := storage.NewSchema(storage.ColumnDef{Name: "id", Type: storage.TypeInt64})
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

// TestWriteTimeoutDisabled covers the operator opt-out: with a negative
// WriteTimeout, reply must clear any deadline left on the conn instead
// of writing under a stale one, and the full request cycle still works.
// Regression test for the deadlinecheck finding that the zero-timeout
// path reached WriteFrame with whatever deadline happened to be set.
func TestWriteTimeoutDisabled(t *testing.T) {
	eng := openEngine(t, txn.ModeNone, disk.Model{})
	srv := startServer(t, eng, server.Config{WriteTimeout: -1})
	c := dialClient(t, srv.Addr(), client.Options{})

	if err := c.Ping(); err != nil {
		t.Fatalf("ping with write timeout disabled: %v", err)
	}
	if err := c.CreateTable("wt", testCols, "id"); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Count("wt"); err != nil || n != 0 {
		t.Fatalf("count = %d, %v; want 0", n, err)
	}
}
