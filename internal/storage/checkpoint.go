package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"hyrisenv/internal/mvcc"
	"hyrisenv/internal/pstruct"
	"hyrisenv/internal/vec"
)

// Binary checkpoints are the physical table dumps of the log-based
// baseline: the full main and delta partitions including MVCC stamps.
// They deliberately reproduce the conventional recovery architecture the
// paper compares against — restart cost is dominated by reading these
// dumps back and re-building volatile search structures.
//
// A checkpoint must be taken with row appends paused on the table (the
// engine holds the commit lock and the table's write lock); uncommitted
// rows are captured with begin = Inf and are stamped later by log replay
// if their transaction committed after the checkpoint.

const (
	ckptMagic   = 0x4859434b // "HYCK"
	ckptVersion = 1
)

// WriteCheckpoint serializes the table to w. Row appends are blocked
// for the duration so the dump is a point-in-time image.
func (t *Table) WriteCheckpoint(w io.Writer) error {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	ps := t.parts.Load()

	bw := bufio.NewWriterSize(w, 1<<20)
	var scratch []byte
	u32 := func(v uint32) { scratch = binary.LittleEndian.AppendUint32(scratch[:0], v); bw.Write(scratch) }
	u64 := func(v uint64) { scratch = binary.LittleEndian.AppendUint64(scratch[:0], v); bw.Write(scratch) }
	blob := func(b []byte) { u32(uint32(len(b))); bw.Write(b) }

	u32(ckptMagic)
	u32(ckptVersion)
	blob([]byte(t.Name))
	u32(t.ID)
	u64(t.indexMask)
	blob(t.Schema.Marshal())

	ncols := t.Schema.NumCols()
	mr := ps.mainMVCC.Rows()
	dr := ps.deltaMVCC.Rows()
	u64(mr)
	u64(dr)

	for c := 0; c < ncols; c++ {
		m := ps.main[c]
		u64(m.DictLen())
		for id := uint64(0); id < m.DictLen(); id++ {
			blob(m.DictKey(id))
		}
		m.ScanIDs(func(_, id uint64) bool { u32(uint32(id)); return true })

		d := ps.delta[c]
		u64(d.DictLen())
		for id := uint64(0); id < d.DictLen(); id++ {
			blob(d.DictKey(id))
		}
		// Delta attribute vectors may momentarily be longer than the MVCC
		// row count; dump exactly dr entries.
		for r := uint64(0); r < dr; r++ {
			u32(uint32(d.ValueID(r)))
		}
	}

	dumpVec := func(v vec.Vec, n uint64) {
		for i := uint64(0); i < n; i++ {
			u64(v.Get(i))
		}
	}
	dumpVec(ps.mainMVCC.BeginVec(), mr)
	dumpVec(ps.mainMVCC.EndVec(), mr)
	dumpVec(ps.deltaMVCC.BeginVec(), dr)
	dumpVec(ps.deltaMVCC.EndVec(), dr)

	return bw.Flush()
}

// ReadCheckpoint reconstructs a volatile table from a checkpoint stream.
// This is the expensive part of log-based recovery: all column data is
// read, decoded and re-materialized, and the delta dictionary index (a
// hash map) is rebuilt from scratch.
//
// ReadCheckpoint consumes exactly one table's bytes from r — it must NOT
// buffer beyond them, because multiple tables are stored back to back in
// one checkpoint file. Callers provide their own buffered reader.
func ReadCheckpoint(br io.Reader) (*Table, error) {
	var scratch [8]byte
	u32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	u64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:8]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:8]), nil
	}
	blob := func() ([]byte, error) {
		n, err := u32()
		if err != nil {
			return nil, err
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, err
		}
		return b, nil
	}

	if m, err := u32(); err != nil || m != ckptMagic {
		return nil, fmt.Errorf("storage: bad checkpoint magic (err=%v)", err)
	}
	if v, err := u32(); err != nil || v != ckptVersion {
		return nil, fmt.Errorf("storage: unsupported checkpoint version (err=%v)", err)
	}
	nameB, err := blob()
	if err != nil {
		return nil, err
	}
	id, err := u32()
	if err != nil {
		return nil, err
	}
	mask, err := u64()
	if err != nil {
		return nil, err
	}
	schemaB, err := blob()
	if err != nil {
		return nil, err
	}
	schema, err := UnmarshalSchema(schemaB)
	if err != nil {
		return nil, err
	}
	mr, err := u64()
	if err != nil {
		return nil, err
	}
	dr, err := u64()
	if err != nil {
		return nil, err
	}

	t := &Table{Name: string(nameB), ID: id, Schema: schema, indexMask: mask}
	ncols := schema.NumCols()
	ps := &partitions{
		mainIdx:  make([]mainIndex, ncols),
		deltaIdx: make([]deltaIndex, ncols),
	}
	for c := 0; c < ncols; c++ {
		// Main partition.
		dictN, err := u64()
		if err != nil {
			return nil, err
		}
		dict := make([]string, dictN)
		for i := range dict {
			k, err := blob()
			if err != nil {
				return nil, err
			}
			dict[i] = string(k)
		}
		ids := make([]uint64, mr)
		for i := range ids {
			v, err := u32()
			if err != nil {
				return nil, err
			}
			ids[i] = uint64(v)
		}
		ps.main = append(ps.main, volatileMainFromParts(schema.Cols[c].Type, dict, ids))

		// Delta partition: rebuild the hash index while loading.
		dDictN, err := u64()
		if err != nil {
			return nil, err
		}
		d := NewVolatileDelta(schema.Cols[c].Type)
		for i := uint64(0); i < dDictN; i++ {
			k, err := blob()
			if err != nil {
				return nil, err
			}
			d.dictKeys = append(d.dictKeys, string(k))
			d.dictIdx[string(k)] = i
		}
		for r := uint64(0); r < dr; r++ {
			v, err := u32()
			if err != nil {
				return nil, err
			}
			if _, err := d.av.Append(uint64(v)); err != nil {
				return nil, err
			}
		}
		ps.delta = append(ps.delta, d)
	}

	loadVec := func(n uint64) (*vec.Volatile, error) {
		v := vec.NewVolatile(10)
		buf := make([]uint64, 0, 4096)
		for i := uint64(0); i < n; i++ {
			x, err := u64()
			if err != nil {
				return nil, err
			}
			buf = append(buf, x)
			if len(buf) == cap(buf) {
				if _, err := v.AppendN(buf); err != nil {
					return nil, err
				}
				buf = buf[:0]
			}
		}
		if _, err := v.AppendN(buf); err != nil {
			return nil, err
		}
		return v, nil
	}
	mb, err := loadVec(mr)
	if err != nil {
		return nil, err
	}
	me, err := loadVec(mr)
	if err != nil {
		return nil, err
	}
	db, err := loadVec(dr)
	if err != nil {
		return nil, err
	}
	de, err := loadVec(dr)
	if err != nil {
		return nil, err
	}
	ps.mainMVCC = newStoreFrom(mb, me)
	ps.deltaMVCC = newStoreFrom(db, de)
	t.parts.Store(ps)
	return t, nil
}

// volatileMainFromParts builds a VolatileMain directly from a sorted
// dictionary and row IDs (checkpoint load path — no re-deduplication).
func volatileMainFromParts(typ ColType, dict []string, ids []uint64) *VolatileMain {
	var maxV uint64
	if len(dict) > 0 {
		maxV = uint64(len(dict) - 1)
	}
	bits := pstruct.BitsFor(maxV)
	words := (uint64(len(ids))*bits + 63) / 64
	if words == 0 {
		words = 1
	}
	packed := make([]byte, words*8)
	for i, id := range ids {
		pstruct.PutBits(packed, uint64(i)*bits, bits, id)
	}
	return &VolatileMain{typ: typ, dictKeys: dict, packed: packed, bits: bits, rows: uint64(len(ids))}
}

func newStoreFrom(begin, end *vec.Volatile) *mvcc.Store {
	return mvcc.NewStore(begin, end)
}
