package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"
)

// A Program is the whole-program view over one Load result: every
// target package, ordered dependencies-first over the package DAG, plus
// a module-wide function index that bridges the two identities a
// function has under export-data loading. A *types.Func observed at a
// cross-package call site belongs to the importer's export-data view of
// the callee package and is a different object from the one produced by
// type-checking the callee from source; both print the same
// types.Func.FullName (e.g. "(*hyrisenv/internal/nvm.Heap).Persist"),
// so the index is keyed by full name and whole-program analyses use
// full names as function identity.
type Program struct {
	// Fset is the single file set shared by every package of one Load
	// call.
	Fset *token.FileSet
	// Packages holds the target packages in topological order,
	// dependencies before dependents, ties broken by import path.
	Packages []*Package

	byPath map[string]*Package
	funcs  map[string]*ProgFunc
	names  []string // sorted keys of funcs
}

// A ProgFunc is one function or method declared with a body somewhere
// in the program, together with the package that declares it.
type ProgFunc struct {
	Pkg  *Package
	Obj  *types.Func
	Decl *ast.FuncDecl
}

// FullName returns the function's module-wide identity.
func (f *ProgFunc) FullName() string { return f.Obj.FullName() }

// NewProgram assembles the whole-program view of pkgs (one Load/LoadTags
// result; they share a file set).
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		byPath: map[string]*Package{},
		funcs:  map[string]*ProgFunc{},
	}
	for _, pkg := range pkgs {
		p.byPath[pkg.PkgPath] = pkg
		if p.Fset == nil {
			p.Fset = pkg.Fset
		}
	}

	// Topological order over the in-program import DAG, dependencies
	// first. Visit order is sorted so the result is deterministic.
	paths := make([]string, 0, len(pkgs))
	for _, pkg := range pkgs {
		paths = append(paths, pkg.PkgPath)
	}
	sort.Strings(paths)
	seen := map[string]bool{}
	var visit func(path string)
	visit = func(path string) {
		pkg, ok := p.byPath[path]
		if !ok || seen[path] {
			return
		}
		seen[path] = true
		imps := pkg.Types.Imports()
		ipaths := make([]string, 0, len(imps))
		for _, imp := range imps {
			ipaths = append(ipaths, imp.Path())
		}
		sort.Strings(ipaths)
		for _, ip := range ipaths {
			visit(ip)
		}
		p.Packages = append(p.Packages, pkg)
	}
	for _, path := range paths {
		visit(path)
	}

	for _, pkg := range p.Packages {
		for _, file := range pkg.Syntax {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				p.funcs[obj.FullName()] = &ProgFunc{Pkg: pkg, Obj: obj, Decl: fd}
			}
		}
	}
	p.names = make([]string, 0, len(p.funcs))
	for name := range p.funcs {
		p.names = append(p.names, name)
	}
	sort.Strings(p.names)
	return p
}

// Package returns the target package with the given import path, or nil
// when the path is outside the program (a dependency loaded only as
// export data, or the standard library).
func (p *Program) Package(path string) *Package { return p.byPath[path] }

// FuncOf resolves fn — from any package's type information, source- or
// export-data-backed — to its declaration in the program, or nil when
// the function is declared outside the loaded target set (or has no
// body).
func (p *Program) FuncOf(fn *types.Func) *ProgFunc {
	if fn == nil {
		return nil
	}
	return p.funcs[fn.FullName()]
}

// FuncNamed is FuncOf by full name.
func (p *Program) FuncNamed(fullName string) *ProgFunc { return p.funcs[fullName] }

// Funcs returns every declared function of the program, sorted by full
// name.
func (p *Program) Funcs() []*ProgFunc {
	out := make([]*ProgFunc, 0, len(p.names))
	for _, name := range p.names {
		out = append(out, p.funcs[name])
	}
	return out
}

// A ProgramAnalyzer checks a whole-program invariant: one Run sees every
// package at once through the Program, instead of one package at a
// time. Cross-package protocols (the 2PC barrier schedule, commit/
// recovery symmetry) are inexpressible as per-package Analyzers — the
// commit path and the recovery path of the same durable field routinely
// live in different packages.
type ProgramAnalyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //nvmcheck:ignore comments. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects the whole program and reports findings via
	// pass.Reportf.
	Run func(pass *ProgramPass) error
}

// A ProgramPass provides one whole-program analyzer run.
type ProgramPass struct {
	Analyzer *ProgramAnalyzer
	Prog     *Program

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunProgram applies every whole-program analyzer to prog and returns
// the surviving diagnostics with per-analyzer accounting, exactly as
// RunDetailed does for per-package analyzers. The same //nvmcheck:ignore
// convention applies; malformed (reasonless) suppressions are *not*
// re-reported here — the per-package run and -selfcheck already flag
// them, and a -wholeprogram run layers both drivers over the same
// packages.
func RunProgram(prog *Program, analyzers []*ProgramAnalyzer) (*Result, error) {
	res := &Result{
		Raw:        map[string]int{},
		Suppressed: map[string]int{},
		Elapsed:    map[string]time.Duration{},
	}
	sup := &suppressions{byLine: map[string]map[string]bool{}}
	for _, pkg := range prog.Packages {
		ps := collectSuppressions(pkg)
		for key, names := range ps.byLine {
			if sup.byLine[key] == nil {
				sup.byLine[key] = map[string]bool{}
			}
			for name := range names {
				sup.byLine[key][name] = true
			}
		}
	}
	var raw []Diagnostic
	for _, a := range analyzers {
		res.Raw[a.Name] = 0
		res.Suppressed[a.Name] = 0
		pass := &ProgramPass{Analyzer: a, Prog: prog, diags: &raw}
		start := time.Now()
		err := a.Run(pass)
		res.Elapsed[a.Name] += time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s (whole program): %w", a.Name, err)
		}
	}
	kept := sup.filter(raw)
	for _, d := range raw {
		res.Raw[d.Analyzer]++
		res.Suppressed[d.Analyzer]++
	}
	for _, d := range kept {
		res.Suppressed[d.Analyzer]--
	}
	res.Diags = kept
	SortDiagnostics(res.Diags)
	return res, nil
}
