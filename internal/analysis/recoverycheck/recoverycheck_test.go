package recoverycheck_test

import (
	"testing"

	"hyrisenv/internal/analysis"
	"hyrisenv/internal/analysis/recoverycheck"
)

func TestFixture(t *testing.T) {
	analysis.FixtureProgram(t, analysis.FixtureDir(),
		[]*analysis.ProgramAnalyzer{recoverycheck.Analyzer}, "./recovery")
}

// TestRealShardTreeClean pins the analyzer against the real coordinator:
// the {gtid, cid} decision slots and the high-water mark are written on
// commit paths and read back by recovery, so the shard package must be
// symmetric. The seeded crosscheck_deadfield variant (loaded by the
// crashtest harness under that build tag) breaks exactly this.
// TestNvmFsckSuppressionLoadBearing proves the //nvmcheck:ignore in the
// nvm arena walk (fsck.go) still absorbs real findings: the analyzer
// must raise the cursor-provenance reads (so the suppression is not
// stale) and the reasoned comment must filter all of them (so the
// whole-program run stays clean).
func TestNvmFsckSuppressionLoadBearing(t *testing.T) {
	pkgs, err := analysis.Load("../../..", "./internal/nvm")
	if err != nil {
		t.Fatalf("loading internal/nvm: %v", err)
	}
	res, err := analysis.RunProgram(analysis.NewProgram(pkgs),
		[]*analysis.ProgramAnalyzer{recoverycheck.Analyzer})
	if err != nil {
		t.Fatalf("running recoverycheck: %v", err)
	}
	if res.Raw["recoverycheck"] == 0 {
		t.Errorf("arena-walk suppression is stale: the analyzer no longer raises any finding in internal/nvm")
	}
	if res.Suppressed["recoverycheck"] != res.Raw["recoverycheck"] {
		t.Errorf("suppression absorbed %d of %d findings", res.Suppressed["recoverycheck"], res.Raw["recoverycheck"])
	}
	for _, d := range res.Diags {
		t.Errorf("unexpected surviving finding: %s", d)
	}
}

func TestRealShardTreeClean(t *testing.T) {
	pkgs, err := analysis.Load("../../..", "./internal/shard")
	if err != nil {
		t.Fatalf("loading internal/shard: %v", err)
	}
	res, err := analysis.RunProgram(analysis.NewProgram(pkgs),
		[]*analysis.ProgramAnalyzer{recoverycheck.Analyzer})
	if err != nil {
		t.Fatalf("running recoverycheck: %v", err)
	}
	for _, d := range res.Diags {
		t.Errorf("unexpected finding on the real tree: %s", d)
	}
}
