// External test package: importing persistcheck from an in-package
// test would cycle, now that persistcheck consults publishcheck's
// AnnotationLoadBearing for its annotation-rot report.
package publishcheck_test

import (
	"fmt"
	"go/ast"
	"strings"
	"testing"

	"hyrisenv/internal/analysis"
	"hyrisenv/internal/analysis/persistcheck"
	"hyrisenv/internal/analysis/publishcheck"
)

func TestFixture(t *testing.T) {
	analysis.Fixture(t, analysis.FixtureDir(), []*analysis.Analyzer{publishcheck.Analyzer}, "./publish")
}

// TestV2MissesAliasCases proves the motivating blind spots: the v2
// persistcheck engine, run over the same fixture, reports nothing at
// the lines publishcheck flags — the dirty writes flow through slice
// aliases, slice elements, interface dispatch and function values,
// none of which the variable-level engine can see.
func TestV2MissesAliasCases(t *testing.T) {
	pkgs, err := analysis.Load(analysis.FixtureDir(), "./publish")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}

	v3, err := analysis.Run(pkgs, []*analysis.Analyzer{publishcheck.Analyzer})
	if err != nil {
		t.Fatalf("running publishcheck: %v", err)
	}
	v2, err := analysis.Run(pkgs, []*analysis.Analyzer{persistcheck.Analyzer})
	if err != nil {
		t.Fatalf("running persistcheck: %v", err)
	}
	v2lines := map[string]bool{}
	for _, d := range v2 {
		v2lines[fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)] = true
	}

	// The alias-flow cases that motivated the points-to layer: each must
	// be a publishcheck finding on a line where persistcheck is silent.
	blindSpots := []string{"aliasDirty", "elemDirty", "ifaceDirty", "leaderForgetsFence"}
	for _, name := range blindSpots {
		found := false
		for _, d := range v3 {
			if !strings.Contains(d.Message, "publishes") || fnOfDiag(pkgs, d) != name {
				continue
			}
			found = true
			if v2lines[fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)] {
				t.Errorf("%s: persistcheck v2 already reports this line — not a blind-spot demonstration", name)
			}
		}
		if !found {
			t.Errorf("publishcheck missed the seeded %s publication", name)
		}
	}
}

// fnOfDiag maps a diagnostic back to the enclosing fixture function by
// positional containment.
func fnOfDiag(pkgs []*analysis.Package, d analysis.Diagnostic) string {
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				start := pkg.Fset.Position(fd.Pos())
				end := pkg.Fset.Position(fd.End())
				if start.Filename == d.Pos.Filename && d.Pos.Line >= start.Line && d.Pos.Line <= end.Line {
					return fd.Name.Name
				}
			}
		}
	}
	return ""
}
