package pstruct

import (
	"hyrisenv/internal/nvm"
)

// Persistent posting lists: singly-linked lists of uint64 payloads whose
// head pointer lives in an arbitrary caller-owned persistent slot (for
// example the value word of a skip-list node). Secondary indexes map a
// column value to the posting list of row IDs carrying that value.
//
// Push is crash-atomic: the node is persisted before the head slot is
// atomically redirected to it.

const (
	plOffVal  = 0
	plOffNext = 8
	plNodeLen = 16
)

// ListPush prepends val to the list anchored at slot.
func ListPush(h *nvm.Heap, slot nvm.PPtr, val uint64) error {
	node, err := h.Alloc(plNodeLen)
	if err != nil {
		return err
	}
	h.PutU64(node.Add(plOffVal), val)
	h.PutU64(node.Add(plOffNext), h.U64(slot))
	h.Persist(node, plNodeLen)
	h.SetU64(slot, uint64(node))
	h.Persist(slot, 8)
	return nil
}

// ListScan calls fn for every value in the list anchored at slot, in
// most-recently-pushed-first order. fn returning false stops the scan.
func ListScan(h *nvm.Heap, slot nvm.PPtr, fn func(val uint64) bool) {
	cur := nvm.PPtr(h.U64(slot))
	for !cur.IsNil() {
		if h.ReadLatencyEnabled() {
			h.ChargeRead(plNodeLen)
		}
		if !fn(h.U64(cur.Add(plOffVal))) {
			return
		}
		cur = nvm.PPtr(h.U64(cur.Add(plOffNext)))
	}
}

// ListLen counts the list entries.
func ListLen(h *nvm.Heap, slot nvm.PPtr) uint64 {
	var n uint64
	ListScan(h, slot, func(uint64) bool { n++; return true })
	return n
}

// ListBlocks yields every node block of the list anchored at slot.
func ListBlocks(h *nvm.Heap, slot nvm.PPtr, yield func(nvm.PPtr)) {
	for cur := nvm.PPtr(h.U64(slot)); !cur.IsNil(); cur = nvm.PPtr(h.U64(cur.Add(plOffNext))) {
		yield(cur)
	}
}
