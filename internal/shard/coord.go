// Package shard implements the N-way hash-partitioned engine: a router
// over N independent core.Engines (one NVM heap, MVCC store, WAL and
// group-commit batcher each) sharing one global commit-ID clock. Rows
// route to a shard by hash of their first column; transactions touching
// one shard commit on that shard's unmodified fast path, transactions
// touching several commit with two-phase commit against a coordinator
// NVM region. Restart fans shard recovery out across a worker pool, so
// restart-to-serve stays flat as shards are added — each shard's
// recovery is O(its in-flight writes), and they run concurrently.
package shard

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"

	"hyrisenv/internal/nvm"
)

// Coordinator is the cross-shard commit authority: a small dedicated NVM
// heap holding durable {gtid -> cid} decision records and the persistent
// global-transaction-ID high-water mark. Its restart cost is O(decision
// slots) — a single fixed-size region scan — so the coordinator restarts
// instantly regardless of database size or shard count.
//
// Decision protocol (the 2PC commit point): Decide writes the slot's cid
// word, persists it, then writes the gtid word, persists it and drains.
// Under the 8-byte tear model the gtid store is atomic, so a decision is
// durably visible exactly when its gtid word is — a crash can never
// expose a slot whose gtid names one transaction and whose cid belongs
// to another. Forget zeroes the gtid word and persists before the slot
// can be reused, preserving that ordering for the next occupant.
type Coordinator struct {
	h *nvm.Heap

	mu        sync.Mutex
	root      nvm.PPtr
	slots     int
	free      []int          // volatile free-slot stack
	slotOf    map[uint64]int // gtid -> occupied slot
	decisions map[uint64]uint64

	nextGTID uint64
	highGTID uint64 // persisted reservation bound (exclusive)
}

const (
	coordHeapName = "coord.nvm"
	coordRootName = "2pc:coord"

	// Root block layout: the GTID high-water mark, the slot count, then
	// slots of {gtid, cid} pairs.
	coOffHighWater = 0
	coOffSlotCount = 8
	coOffSlots     = 16
	coSlotSize     = 16

	// Slot layout: cid is persisted first; the gtid word, persisted
	// second, publishes the decision (see Decide).
	coSlotGTID = 0
	coSlotCID  = 8

	// defaultCoordSlots bounds concurrently in-flight cross-shard
	// decisions (a decision lives only from its commit point until every
	// participant released its context).
	defaultCoordSlots = 1024

	// gtidBatch is the high-water reservation granularity: one persist
	// per gtidBatch allocations, and at most gtidBatch IDs skipped per
	// restart.
	gtidBatch = 4096
)

// ErrCoordFull means too many cross-shard commits are between their
// decision and their finish at once.
var ErrCoordFull = errors.New("shard: coordinator decision slots exhausted")

// openCoordinator creates or re-attaches the coordinator heap at path.
// shards is persisted in the root's aux word on creation and verified on
// re-open: a database partitioned N ways cannot be re-opened with a
// different N (the hash routing would scatter every table).
func openCoordinator(path string, shards int, opts ...nvm.Option) (*Coordinator, error) {
	h, err := nvm.Open(path, opts...)
	if errors.Is(err, fs.ErrNotExist) {
		h, err = nvm.Create(path, 1<<20, opts...)
	}
	if err != nil {
		return nil, err
	}
	c := &Coordinator{h: h, slotOf: map[uint64]int{}, decisions: map[uint64]uint64{}}
	if root, aux, ok := h.Root(coordRootName); ok {
		if int(aux) != shards {
			h.Close()
			return nil, fmt.Errorf("shard: database is partitioned %d ways, not %d", aux, shards)
		}
		c.root = root
		if err := c.recover(); err != nil {
			h.Close()
			return nil, err
		}
		return c, nil
	}
	c.slots = defaultCoordSlots
	root, err := h.Alloc(coOffSlots + uint64(c.slots)*coSlotSize)
	if err != nil {
		h.Close()
		return nil, err
	}
	h.PutU64(root.Add(coOffSlotCount), uint64(c.slots))
	h.Persist(root, coOffSlots) // header; slots are zero (free)
	if err := h.SetRoot(coordRootName, root, uint64(shards)); err != nil {
		h.Close()
		return nil, err
	}
	c.root = root
	for i := c.slots - 1; i >= 0; i-- {
		c.free = append(c.free, i)
	}
	return c, nil
}

// NextGTID allocates a globally unique transaction ID. IDs never repeat
// across restarts: allocation draws from a persistently reserved batch,
// and a restart resumes above the last reservation.
func (c *Coordinator) NextGTID() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nextGTID >= c.highGTID {
		c.highGTID = c.nextGTID + gtidBatch
		c.h.PutU64(c.root.Add(coOffHighWater), c.highGTID)
		c.h.Persist(c.root.Add(coOffHighWater), 8)
		c.h.Drain()
	}
	c.nextGTID++
	return c.nextGTID
}

// Forget retires a decision once every participant has finished (their
// contexts no longer name gtid, so recovery will never ask about it).
// The gtid word is zeroed and persisted before the slot returns to the
// free list, so a reused slot can never pair a stale gtid with a new
// cid.
func (c *Coordinator) Forget(gtid uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	slot, ok := c.slotOf[gtid]
	if !ok {
		return
	}
	p := c.root.Add(coOffSlots + uint64(slot)*coSlotSize)
	c.h.PutU64(p.Add(coSlotGTID), 0)
	c.h.Persist(p.Add(coSlotGTID), 8)
	delete(c.slotOf, gtid)
	delete(c.decisions, gtid)
	c.free = append(c.free, slot)
}

// Lookup is the TwoPCDecider the shards' recovery consults for prepared
// contexts: it reports the decided cid for gtid, or commit=false
// (presumed abort) when no decision record exists.
func (c *Coordinator) Lookup(gtid uint64) (cid uint64, commit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cid, ok := c.decisions[gtid]
	return cid, ok
}

// Decisions returns how many decision records are live.
func (c *Coordinator) Decisions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.decisions)
}

// Clear forgets every decision record. Called after all shards finished
// recovery: each prepared context has been resolved and released, so no
// future restart can ask about these gtids.
func (c *Coordinator) Clear() {
	c.mu.Lock()
	gtids := make([]uint64, 0, len(c.decisions))
	for g := range c.decisions {
		gtids = append(gtids, g)
	}
	c.mu.Unlock()
	for _, g := range gtids {
		c.Forget(g)
	}
}

// Heap exposes the coordinator's NVM heap (crash testing, stats).
func (c *Coordinator) Heap() *nvm.Heap { return c.h }

// Close detaches the coordinator heap.
func (c *Coordinator) Close() error { return c.h.Close() }
