package storage

import (
	"testing"
)

// indexedTables builds tables with column 0 (id) and 1 (customer) indexed.
func indexedTables(t *testing.T) map[string]*Table {
	t.Helper()
	h, _ := testNVMHeap(t)
	nt, err := CreateNVMTable(h, "orders", 1, ordersSchema(t), 0b011)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Table{
		"dram": NewVolatileTable("orders", 1, ordersSchema(t), 0b011),
		"nvm":  nt,
	}
}

func lookupVisible(tbl *Table, col int, v Value, cid uint64) []uint64 {
	var rows []uint64
	tbl.LookupRows(col, v.EncodeKey(nil), func(r uint64) bool {
		if tbl.Visible(r, cid, 0) {
			rows = append(rows, r)
		}
		return true
	})
	return rows
}

func TestTableLookupRowsDeltaOnly(t *testing.T) {
	for name, tbl := range indexedTables(t) {
		t.Run(name, func(t *testing.T) {
			if !tbl.Indexed(0) || !tbl.Indexed(1) || tbl.Indexed(2) {
				t.Fatal("index mask wiring")
			}
			for i := int64(0); i < 20; i++ {
				row, _ := tbl.AppendRow([]Value{Int(i % 4), Str("c"), Float(0)}, 1)
				commitRow(tbl, row, 2)
			}
			rows := lookupVisible(tbl, 0, Int(3), 5)
			if len(rows) != 5 {
				t.Fatalf("lookup id=3: %v", rows)
			}
			for _, r := range rows {
				if tbl.Value(0, r).I != 3 {
					t.Fatalf("row %d has wrong value", r)
				}
			}
			if got := lookupVisible(tbl, 0, Int(99), 5); got != nil {
				t.Fatalf("lookup of absent value: %v", got)
			}
			// Unindexed column reports !ok.
			if ok := tbl.LookupRows(2, Float(0).EncodeKey(nil), func(uint64) bool { return true }); ok {
				t.Fatal("unindexed column lookup returned ok")
			}
		})
	}
}

func TestTableLookupRowsAcrossMerge(t *testing.T) {
	for name, tbl := range indexedTables(t) {
		t.Run(name, func(t *testing.T) {
			for i := int64(0); i < 10; i++ {
				row, _ := tbl.AppendRow([]Value{Int(i % 3), Str("x"), Float(0)}, 1)
				commitRow(tbl, row, 2)
			}
			if _, err := tbl.Merge(3); err != nil {
				t.Fatal(err)
			}
			// Post-merge: lookups resolve through the main group-key index.
			rows := lookupVisible(tbl, 0, Int(1), 5)
			if len(rows) != 3 {
				t.Fatalf("post-merge lookup: %v", rows)
			}
			// New delta rows found too.
			row, _ := tbl.AppendRow([]Value{Int(1), Str("y"), Float(0)}, 1)
			commitRow(tbl, row, 6)
			rows = lookupVisible(tbl, 0, Int(1), 7)
			if len(rows) != 4 {
				t.Fatalf("mixed main+delta lookup: %v", rows)
			}
		})
	}
}

func TestTableLookupRange(t *testing.T) {
	for name, tbl := range indexedTables(t) {
		t.Run(name, func(t *testing.T) {
			for i := int64(0); i < 10; i++ {
				row, _ := tbl.AppendRow([]Value{Int(i), Str("x"), Float(0)}, 1)
				commitRow(tbl, row, 2)
			}
			tbl.Merge(3) // move into main
			// Two more in delta.
			for i := int64(10); i < 12; i++ {
				row, _ := tbl.AppendRow([]Value{Int(i), Str("x"), Float(0)}, 1)
				commitRow(tbl, row, 4)
			}
			var vals []int64
			tbl.LookupRowsInRange(0, Int(3).EncodeKey(nil), Int(11).EncodeKey(nil), func(r uint64) bool {
				if tbl.Visible(r, 10, 0) {
					vals = append(vals, tbl.Value(0, r).I)
				}
				return true
			})
			if len(vals) != 8 { // 3..10
				t.Fatalf("range vals = %v", vals)
			}
			for _, v := range vals {
				if v < 3 || v >= 11 {
					t.Fatalf("out-of-range value %d", v)
				}
			}
		})
	}
}

func TestTableIndexSurvivesRestartNVM(t *testing.T) {
	h, path := testNVMHeap(t)
	tbl, err := CreateNVMTable(h, "orders", 1, ordersSchema(t), 0b001)
	if err != nil {
		t.Fatal(err)
	}
	h.SetRoot("tbl:orders", tbl.Root(), 0)
	for i := int64(0); i < 30; i++ {
		row, _ := tbl.AppendRow([]Value{Int(i % 5), Str("c"), Float(0)}, 1)
		commitRow(tbl, row, 2)
	}
	h2 := reopenHeap(t, h, path)
	root, _, _ := h2.Root("tbl:orders")
	tbl2, err := OpenNVMTable(h2, "orders", root)
	if err != nil {
		t.Fatal(err)
	}
	// The delta index is usable immediately — no rebuild call.
	rows := lookupVisible(tbl2, 0, Int(2), 5)
	if len(rows) != 6 {
		t.Fatalf("post-restart index lookup: %v", rows)
	}
}

func TestTableStaleIndexEntryFiltered(t *testing.T) {
	// A crash can leave a delta-index entry for a row that the restart
	// fixup truncates; if the slot is later reused by a different value
	// the stale entry must not surface.
	h, path := testNVMHeap(t)
	tbl, err := CreateNVMTable(h, "orders", 1, ordersSchema(t), 0b001)
	if err != nil {
		t.Fatal(err)
	}
	h.SetRoot("tbl:orders", tbl.Root(), 0)
	row, _ := tbl.AppendRow([]Value{Int(1), Str("a"), Float(0)}, 1)
	commitRow(tbl, row, 2)
	// Crash mid-append of a row with value 777: index entry may be
	// persisted while the row gets truncated.
	func() {
		defer func() { recover() }()
		h.FailAfter(8)
		tbl.AppendRow([]Value{Int(777), Str("b"), Float(0)}, 3)
		h.FailAfter(0)
	}()
	h.FailAfter(0)
	h2 := reopenHeap(t, h, path)
	root, _, _ := h2.Root("tbl:orders")
	tbl2, err := OpenNVMTable(h2, "orders", root)
	if err != nil {
		t.Fatal(err)
	}
	// Reuse the slot with a different value.
	row2, _ := tbl2.AppendRow([]Value{Int(888), Str("c"), Float(0)}, 1)
	commitRow(tbl2, row2, 3)
	// 777 must not return row2 (whatever the stale index says).
	for _, r := range lookupVisible(tbl2, 0, Int(777), 10) {
		if tbl2.Value(0, r).I != 777 {
			t.Fatalf("stale index entry surfaced row %d", r)
		}
	}
	got := lookupVisible(tbl2, 0, Int(888), 10)
	if len(got) != 1 || got[0] != row2 {
		t.Fatalf("lookup(888) = %v", got)
	}
}

func TestRebuildIndexes(t *testing.T) {
	for name, tbl := range indexedTables(t) {
		t.Run(name, func(t *testing.T) {
			for i := int64(0); i < 10; i++ {
				row, _ := tbl.AppendRow([]Value{Int(i % 2), Str("x"), Float(0)}, 1)
				commitRow(tbl, row, 2)
			}
			tbl.Merge(3)
			row, _ := tbl.AppendRow([]Value{Int(1), Str("x"), Float(0)}, 1)
			commitRow(tbl, row, 4)
			if err := tbl.RebuildIndexes(); err != nil {
				t.Fatal(err)
			}
			rows := lookupVisible(tbl, 0, Int(1), 10)
			if len(rows) != 6 {
				t.Fatalf("post-rebuild lookup: %v", rows)
			}
		})
	}
}

func TestHashDictTableCrashRepair(t *testing.T) {
	// The torn-row-append repair must hold with the hash dictionary
	// index as well.
	h, path := testNVMHeap(t)
	tbl, err := CreateNVMTable(h, "orders", 1, ordersSchema(t), 0b001, WithHashDictIndex())
	if err != nil {
		t.Fatal(err)
	}
	h.SetRoot("tbl:orders", tbl.Root(), 0)
	for i := int64(0); i < 5; i++ {
		row, _ := tbl.AppendRow([]Value{Int(i), Str("x"), Float(0)}, 1)
		commitRow(tbl, row, 2)
	}
	for fail := int64(1); fail <= 8; fail++ {
		func() {
			defer func() { recover() }()
			h.FailAfter(fail)
			tbl.AppendRow([]Value{Int(99), Str("torn"), Float(9)}, 7)
			h.FailAfter(0)
		}()
		h.FailAfter(0)
		h2 := reopenHeap(t, h, path)
		root, _, _ := h2.Root("tbl:orders")
		tbl2, err := OpenNVMTable(h2, "orders", root)
		if err != nil {
			t.Fatalf("fail=%d: %v", fail, err)
		}
		var n int
		tbl2.ScanVisible(100, 0, func(uint64) bool { n++; return true })
		if n != 5 {
			t.Fatalf("fail=%d: visible=%d", fail, n)
		}
		if _, err := tbl2.Check(); err != nil {
			t.Fatalf("fail=%d: %v", fail, err)
		}
		h, tbl = h2, tbl2
	}
}

// TestLookupRowsDuplicateStaleEntry pins the crash-window hazard found
// by the sharded chaos harness: a power loss between the (immediately
// persisted) delta-index insert and the transaction context's undo
// record leaves an index entry recovery cannot attribute to anyone.
// When the rolled-back delta slot is later reused by an insert of the
// SAME key, the stale and live entries agree on both key and slot —
// value verification passes for both, and only duplicate suppression
// keeps the row from being served twice.
func TestLookupRowsDuplicateStaleEntry(t *testing.T) {
	h, _ := testNVMHeap(t)
	tbl, err := CreateNVMTable(h, "orders", 1, ordersSchema(t), 0b001)
	if err != nil {
		t.Fatal(err)
	}
	row, err := tbl.AppendRow([]Value{Int(7), Str("c"), Float(0)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	commitRow(tbl, row, 2)
	// Fabricate the crash-stale duplicate: a second posting for the same
	// (key, slot) pair, exactly what the lost undo record leaves behind.
	enc := Int(7).EncodeKey(nil)
	if err := tbl.parts.Load().deltaIdx[0].Insert(enc, row); err != nil {
		t.Fatal(err)
	}
	got := lookupVisible(tbl, 0, Int(7), 5)
	if len(got) != 1 || got[0] != row {
		t.Fatalf("lookup with stale duplicate entry = %v, want [%d] once", got, row)
	}
}
