// Package lock exercises the lockcheck analyzer.
package lock

import (
	"errors"
	"sync"
	"time"

	"fix/nvm"
)

var errFail = errors.New("fail")

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	a  sync.Mutex
	b  sync.Mutex
	n  int
}

// leakOnEarlyReturn forgets the unlock on the error path.
func (s *store) leakOnEarlyReturn(fail bool) error {
	s.mu.Lock()
	if fail {
		return errFail // want `function leakOnEarlyReturn may return while still holding s\.mu`
	}
	s.mu.Unlock()
	return nil
}

// deferUnlockClean releases on every path through the defer.
func (s *store) deferUnlockClean(fail bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fail {
		return errFail
	}
	s.n++
	return nil
}

// relock re-acquires a held mutex: Go mutexes are not reentrant.
func (s *store) relock() {
	s.mu.Lock()
	s.mu.Lock() // want `s\.mu is already held`
	s.mu.Unlock()
	s.mu.Unlock()
}

// rlockUnderWrite downgrades by re-acquiring, which also deadlocks.
func (s *store) rlockUnderWrite() {
	s.rw.Lock()
	s.rw.RLock() // want `s\.rw is already held`
	s.rw.RUnlock()
	s.rw.Unlock()
}

// sleepUnderLock stalls every contender for the duration.
func (s *store) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep may block indefinitely while holding s\.mu`
	s.mu.Unlock()
}

// persistUnderRLock flushes NVM writes while holding a shared view.
func (s *store) persistUnderRLock(h *nvm.Heap, p nvm.PPtr) {
	s.rw.RLock()
	h.Persist(p, 8) // want `persist barrier Persist under read lock s\.rw`
	s.rw.RUnlock()
}

// persistUnderWriteLock is the group-commit idiom: allowed.
func (s *store) persistUnderWriteLock(h *nvm.Heap, p nvm.PPtr) {
	s.mu.Lock()
	h.Persist(p, 8)
	s.mu.Unlock()
}

// lockAB and lockBA invert each other's acquisition order; the report
// lands on the earlier site of the pair.
func (s *store) lockAB() {
	s.a.Lock()
	s.b.Lock() // want `lock order inversion: store\.b acquired while holding store\.a`
	s.b.Unlock()
	s.a.Unlock()
}

func (s *store) lockBA() {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}

// viewLocked intentionally returns holding the lock; the Locked suffix
// declares the hand-off to the caller.
func (s *store) viewLocked() int {
	s.mu.Lock()
	return s.n
}

// waitSuppressed documents an intentional block under the lock.
func (s *store) waitSuppressed(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() //nvmcheck:ignore lockcheck fixture: startup barrier, no contention yet
	s.mu.Unlock()
}

// branchedUnlock releases on both branches: clean under the join.
func (s *store) branchedUnlock(alt bool) {
	s.mu.Lock()
	if alt {
		s.n++
		s.mu.Unlock()
	} else {
		s.mu.Unlock()
	}
}
