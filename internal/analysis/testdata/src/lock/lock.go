// Package lock exercises the lockcheck analyzer.
package lock

import (
	"errors"
	"sync"
	"time"

	"fix/nvm"
)

var errFail = errors.New("fail")

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	a  sync.Mutex
	b  sync.Mutex
	n  int
}

// leakOnEarlyReturn forgets the unlock on the error path.
func (s *store) leakOnEarlyReturn(fail bool) error {
	s.mu.Lock()
	if fail {
		return errFail // want `function leakOnEarlyReturn may return while still holding s\.mu`
	}
	s.mu.Unlock()
	return nil
}

// deferUnlockClean releases on every path through the defer.
func (s *store) deferUnlockClean(fail bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fail {
		return errFail
	}
	s.n++
	return nil
}

// relock re-acquires a held mutex: Go mutexes are not reentrant.
func (s *store) relock() {
	s.mu.Lock()
	s.mu.Lock() // want `s\.mu is already held`
	s.mu.Unlock()
	s.mu.Unlock()
}

// rlockUnderWrite downgrades by re-acquiring, which also deadlocks.
func (s *store) rlockUnderWrite() {
	s.rw.Lock()
	s.rw.RLock() // want `s\.rw is already held`
	s.rw.RUnlock()
	s.rw.Unlock()
}

// sleepUnderLock stalls every contender for the duration.
func (s *store) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep may block indefinitely while holding s\.mu`
	s.mu.Unlock()
}

// persistUnderRLock flushes NVM writes while holding a shared view.
func (s *store) persistUnderRLock(h *nvm.Heap, p nvm.PPtr) {
	s.rw.RLock()
	h.Persist(p, 8) // want `persist barrier Persist under read lock s\.rw`
	s.rw.RUnlock()
}

// persistUnderWriteLock is the group-commit idiom: allowed.
func (s *store) persistUnderWriteLock(h *nvm.Heap, p nvm.PPtr) {
	s.mu.Lock()
	h.Persist(p, 8)
	s.mu.Unlock()
}

// lockAB and lockBA invert each other's acquisition order; the report
// lands on the earlier site of the pair.
func (s *store) lockAB() {
	s.a.Lock()
	s.b.Lock() // want `lock order inversion: store\.b acquired while holding store\.a`
	s.b.Unlock()
	s.a.Unlock()
}

func (s *store) lockBA() {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}

// viewLocked intentionally returns holding the lock; the Locked suffix
// declares the hand-off to the caller.
func (s *store) viewLocked() int {
	s.mu.Lock()
	return s.n
}

// waitSuppressed documents an intentional block under the lock.
func (s *store) waitSuppressed(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() //nvmcheck:ignore lockcheck fixture: startup barrier, no contention yet
	s.mu.Unlock()
}

// branchedUnlock releases on both branches: clean under the join.
func (s *store) branchedUnlock(alt bool) {
	s.mu.Lock()
	if alt {
		s.n++
		s.mu.Unlock()
	} else {
		s.mu.Unlock()
	}
}

// ---------------------------------------------------------------------------
// The leader/follower group-commit batcher pattern: a forming group
// guarded by a mutex, a leader that lingers for followers and then runs
// the shared durability barrier, and followers blocking on the group's
// outcome.

type batcher struct {
	mu    sync.Mutex
	items []int
}

// leaderLingerUnderLock waits out the group-commit delay while still
// holding the forming-group mutex: followers cannot even enqueue during
// the linger, defeating the point of batching.
func (b *batcher) leaderLingerUnderLock(h *nvm.Heap, p nvm.PPtr) {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep may block indefinitely while holding b\.mu`
	b.items = nil
	h.Persist(p, 8)
	b.mu.Unlock()
}

// leaderLingerOutsideLock is the correct shape: seal the group under
// the mutex, release it, then linger and run the barrier — followers
// keep enqueueing into the next group meanwhile.
func (b *batcher) leaderLingerOutsideLock(h *nvm.Heap, p nvm.PPtr) {
	b.mu.Lock()
	b.items = nil
	b.mu.Unlock()
	time.Sleep(time.Millisecond)
	h.Persist(p, 8)
}

// drainUnderRLock runs the group's durability drain while holding only
// a shared view: every reader stalls for the device latency, and the
// barrier publishes state the read lock does not own.
func (s *store) drainUnderRLock(h *nvm.Heap) {
	s.rw.RLock()
	h.Drain() // want `persist barrier Drain under read lock s\.rw`
	s.rw.RUnlock()
}

// drainUnderCommitMutex is the group-commit leader idiom: the drain runs
// under the exclusive commit mutex, which is allowed — that serialization
// is exactly what the batcher amortizes.
func (s *store) drainUnderCommitMutex(h *nvm.Heap) {
	s.mu.Lock()
	h.Drain()
	s.mu.Unlock()
}
