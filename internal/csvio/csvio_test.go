package csvio

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"testing/quick"

	"hyrisenv/internal/core"
	"hyrisenv/internal/exec"
	"hyrisenv/internal/storage"
	"hyrisenv/internal/txn"
)

// selectEq and scanAll wrap the serial executor for these fixed-schema
// tests, where an executor error is a test bug.
func selectEq(tx *txn.Txn, tbl *storage.Table, col int, val storage.Value) []uint64 {
	rows, err := exec.Serial.Select(context.Background(), tx, tbl, exec.Pred{Col: col, Op: exec.Eq, Val: val})
	if err != nil {
		panic(err)
	}
	return rows
}

func scanAll(tx *txn.Txn, tbl *storage.Table) []uint64 {
	rows, err := exec.Serial.ScanAll(context.Background(), tx, tbl)
	if err != nil {
		panic(err)
	}
	return rows
}

func volatileEngine(t *testing.T) *core.Engine {
	t.Helper()
	e, err := core.Open(core.Config{Mode: txn.ModeNone})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

const sample = `id:int,customer:string,amount:float
1,alice,9.99
2,bob,5
3,"comma, quoted",0.5
`

func TestImportBasics(t *testing.T) {
	e := volatileEngine(t)
	tbl, n, err := Import(e, "orders", strings.NewReader(sample), 2, "id")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("imported %d", n)
	}
	tx := e.Begin()
	rows := selectEq(tx, tbl, 0, storage.Int(3))
	if len(rows) != 1 {
		t.Fatal("indexed import lookup")
	}
	if got := tbl.Value(1, rows[0]).S; got != "comma, quoted" {
		t.Fatalf("quoted cell = %q", got)
	}
	if got := tbl.Value(2, rows[0]).F; got != 0.5 {
		t.Fatalf("float cell = %v", got)
	}
}

func TestImportAppendsToExisting(t *testing.T) {
	e := volatileEngine(t)
	if _, _, err := Import(e, "orders", strings.NewReader(sample), 0); err != nil {
		t.Fatal(err)
	}
	tbl, n, err := Import(e, "orders", strings.NewReader(sample), 0)
	if err != nil || n != 3 {
		t.Fatalf("second import: n=%d err=%v", n, err)
	}
	tx := e.Begin()
	if got := len(scanAll(tx, tbl)); got != 6 {
		t.Fatalf("rows = %d", got)
	}
}

func TestImportErrors(t *testing.T) {
	e := volatileEngine(t)
	cases := []struct {
		name string
		csv  string
	}{
		{"bad header", "id;int\n1\n"},
		{"unknown type", "id:uuid\n1\n"},
		{"bad int", "id:int\nnope\n"},
		{"bad float", "v:float\nnope\n"},
		{"short row", "a:int,b:int\n1\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, _, err := Import(e, "t_"+strings.ReplaceAll(c.name, " ", "_"),
				strings.NewReader(c.csv), 0); err == nil {
				t.Fatal("accepted")
			}
		})
	}
	// Schema mismatch against an existing table.
	if _, _, err := Import(e, "orders", strings.NewReader(sample), 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Import(e, "orders", strings.NewReader("a:int\n1\n"), 0); err == nil {
		t.Fatal("column-count mismatch accepted")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	e := volatileEngine(t)
	tbl, _, err := Import(e, "orders", strings.NewReader(sample), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Delete one row: export only covers visible rows.
	tx := e.Begin()
	victim := selectEq(tx, tbl, 0, storage.Int(2))[0]
	if err := tx.Delete(tbl, victim); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	var buf bytes.Buffer
	n, err := Export(&buf, e.Begin(), tbl)
	if err != nil || n != 2 {
		t.Fatalf("export: n=%d err=%v", n, err)
	}
	// Re-import into a second engine: identical content.
	e2 := volatileEngine(t)
	tbl2, n2, err := Import(e2, "orders", bytes.NewReader(buf.Bytes()), 0)
	if err != nil || n2 != 2 {
		t.Fatalf("reimport: n=%d err=%v", n2, err)
	}
	tx2 := e2.Begin()
	for _, id := range []int64{1, 3} {
		rows := selectEq(tx2, tbl2, 0, storage.Int(id))
		if len(rows) != 1 {
			t.Fatalf("id %d lost in round trip", id)
		}
	}
	if got := tbl2.Schema.Cols[2].Type; got != storage.TypeFloat64 {
		t.Fatalf("schema type lost: %v", got)
	}
}

// Property: arbitrary values survive an export→import round trip,
// including negatives, unicode, embedded commas/quotes/newlines.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(ints []int64, strs []string) bool {
		n := len(ints)
		if len(strs) < n {
			n = len(strs)
		}
		if n == 0 {
			return true
		}
		e := func() *core.Engine {
			e, _ := core.Open(core.Config{Mode: txn.ModeNone})
			return e
		}()
		defer e.Close()
		sch, _ := storage.NewSchema(
			storage.ColumnDef{Name: "k", Type: storage.TypeInt64},
			storage.ColumnDef{Name: "s", Type: storage.TypeString},
		)
		tbl, err := e.CreateTable("t", sch)
		if err != nil {
			return false
		}
		tx := e.Begin()
		for i := 0; i < n; i++ {
			// encoding/csv normalizes \r\n to \n inside quoted fields
			// (RFC 4180); exclude carriage returns from the property.
			s := strings.ReplaceAll(strs[i], "\r", "")
			if _, err := tx.Insert(tbl, []storage.Value{storage.Int(ints[i]), storage.Str(s)}); err != nil {
				return false
			}
		}
		if err := tx.Commit(); err != nil {
			return false
		}

		var buf bytes.Buffer
		if _, err := Export(&buf, e.Begin(), tbl); err != nil {
			return false
		}
		e2, _ := core.Open(core.Config{Mode: txn.ModeNone})
		defer e2.Close()
		tbl2, n2, err := Import(e2, "t", bytes.NewReader(buf.Bytes()), 0)
		if err != nil || n2 != n {
			return false
		}
		// Compare multisets.
		count := map[string]int{}
		tx1, tx2 := e.Begin(), e2.Begin()
		for _, r := range scanAll(tx1, tbl) {
			count[tbl.Value(0, r).String()+"\x00"+tbl.Value(1, r).S]++
		}
		for _, r := range scanAll(tx2, tbl2) {
			count[tbl2.Value(0, r).String()+"\x00"+tbl2.Value(1, r).S]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
