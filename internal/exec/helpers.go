package exec

import (
	"bytes"
	"sort"

	"hyrisenv/internal/storage"
)

// Row-set utilities shared by every read path: materialization, ordering
// and pagination over row-ID results, plus the aggregate merge the shard
// router uses to combine per-shard partials. These operate on row IDs a
// scan already produced (and already filtered for visibility), so they
// take no transaction.

// Project materializes the given columns of the given rows.
func Project(tbl *storage.Table, rows []uint64, cols ...int) [][]storage.Value {
	v := tbl.View()
	out := make([][]storage.Value, len(rows))
	for i, r := range rows {
		vals := make([]storage.Value, len(cols))
		for j, c := range cols {
			vals[j] = v.Value(c, r)
		}
		out[i] = vals
	}
	return out
}

// OrderBy sorts row IDs by the given column, exploiting the
// order-preserving key encoding: rows compare by their encoded
// dictionary keys, so no value decoding happens during the sort.
// desc reverses the order. The input slice is sorted in place and
// returned.
func OrderBy(tbl *storage.Table, rows []uint64, col int, desc bool) []uint64 {
	v := tbl.View()
	mr := v.MainRows()
	keyOf := func(row uint64) []byte {
		if row < mr {
			mc := v.MainColumnAt(col)
			return mc.DictKey(mc.ValueID(row))
		}
		dc := v.DeltaColumnAt(col)
		return dc.DictKey(dc.ValueID(row - mr))
	}
	// Cache keys: DictKey may read NVM blobs; fetch each row's key once.
	keys := make([][]byte, len(rows))
	for i, r := range rows {
		keys[i] = keyOf(r)
	}
	SortRowsByKeys(rows, keys, desc)
	return rows
}

// SortRowsByKeys stably sorts rows in place by their parallel encoded
// keys (descending when desc). The shard router uses it to order global
// row IDs whose keys come from different partitions' dictionaries (the
// encoding is order-preserving on values, so keys compare across
// dictionaries).
func SortRowsByKeys(rows []uint64, keys [][]byte, desc bool) {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		c := bytes.Compare(keys[idx[a]], keys[idx[b]])
		if desc {
			return c > 0
		}
		return c < 0
	})
	out := make([]uint64, len(rows))
	for i, j := range idx {
		out[i] = rows[j]
	}
	copy(rows, out)
}

// Limit returns at most n rows starting at offset.
func Limit(rows []uint64, offset, n int) []uint64 {
	if offset >= len(rows) {
		return nil
	}
	rows = rows[offset:]
	if n < len(rows) {
		rows = rows[:n]
	}
	return rows
}

// SumInt sums an int64 column over the given rows (which must come from
// the same generation, i.e. the same transaction epoch).
func SumInt(tbl *storage.Table, col int, rows []uint64) int64 {
	v := tbl.View()
	var s int64
	for _, r := range rows {
		s += v.Value(col, r).I
	}
	return s
}

// SumFloat sums a float64 column over the given rows.
func SumFloat(tbl *storage.Table, col int, rows []uint64) float64 {
	v := tbl.View()
	var s float64
	for _, r := range rows {
		s += v.Value(col, r).F
	}
	return s
}

// MergeGroups folds per-shard GroupBy partials into one result with the
// same ordering contract as GroupBy itself: groups with equal keys are
// combined (counts and sums added) and the merged result is ordered by
// encoded key. Float64 sums are merged in argument order; as with the
// parallel aggregation inside GroupBy, low bits can differ from a
// single-partition run.
func MergeGroups(partials ...[]Group) []Group {
	byKey := map[storage.Value]*Group{}
	for _, part := range partials {
		for _, g := range part {
			if ex := byKey[g.Key]; ex != nil {
				ex.Count += g.Count
				ex.Sum += g.Sum
			} else {
				cp := g
				byKey[g.Key] = &cp
			}
		}
	}
	out := make([]Group, 0, len(byKey))
	for _, g := range byKey {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i].Key.EncodeKey(nil), out[j].Key.EncodeKey(nil)) < 0
	})
	return out
}
