// Package sharecheck finds unsynchronized sharing between goroutines —
// the races the NVM discipline cannot survive, because a racy write
// that reaches a persist barrier is durable forever.
//
// Rules:
//
//   - mixed atomic/plain access: a variable or field passed to
//     sync/atomic functions somewhere in the package (atomic.AddUint64,
//     atomic.LoadUint32, ...) must be accessed through atomics
//     everywhere; a plain read or write of the same object elsewhere is
//     a data race the race detector only catches when the schedule
//     cooperates. Constructors (New*, Open*, init) are exempt: they run
//     before the object is shared.
//   - goroutine-captured loop variable: a go-closure inside a loop that
//     reads the loop variable by capture instead of receiving it as an
//     argument. Per-iteration loop variables (Go 1.22) make this safe
//     from aliasing, but the capture still races with the post-statement
//     increment under the pre-1.22 semantics this module once built
//     under, and the explicit-argument form is the discipline the
//     executor uses (forEachMorsel passes the worker index).
//   - unsynchronized captured write: an assignment inside a go-closure
//     whose target is a variable captured from the enclosing function,
//     with no lock acquired inside the closure and not inside a
//     sync.Once.Do callback. Every goroutine launched this way races
//     with its siblings and with the spawner.
//   - morsel-slot escape: an indexed write s[i] inside a go-closure
//     where both the slice and the index are captured from the
//     enclosing scope. The executor's contract is one output slot per
//     worker (s[worker] with worker passed as an argument); a captured
//     index makes workers write through a shared cursor into each
//     other's slots.
package sharecheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"hyrisenv/internal/analysis"
	"hyrisenv/internal/analysis/ptr"
	"hyrisenv/internal/analysis/summary"
)

// Analyzer is the sharecheck analysis.
var Analyzer = &analysis.Analyzer{
	Name: "sharecheck",
	Doc:  "unsynchronized sharing: mixed atomic/plain access, captured loop variables, unguarded writes and shared-index slot writes in go-closures",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	checkMixedAtomic(pass)
	for _, fd := range summary.Functions(pass) {
		checkGoClosures(pass, fd)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Rule: mixed atomic/plain access.

type access struct {
	pos    token.Pos
	atomic bool
}

// constructorExempt reports whether fn runs before its result is
// shared, making plain initialization of atomically-accessed fields
// safe.
func constructorExempt(name string) bool {
	return name == "init" ||
		len(name) >= 3 && (name[:3] == "New" || name[:3] == "new") ||
		len(name) >= 4 && (name[:4] == "Open" || name[:4] == "open")
}

func checkMixedAtomic(pass *analysis.Pass) {
	accesses := map[types.Object][]access{}

	record := func(obj types.Object, pos token.Pos, isAtomic bool) {
		if obj == nil {
			return
		}
		// Only variables and fields participate; functions, types and
		// constants cannot race.
		if _, ok := obj.(*types.Var); !ok {
			return
		}
		accesses[obj] = append(accesses[obj], access{pos: pos, atomic: isAtomic})
	}

	// resolve returns the object behind x when x is an identifier or a
	// field selector.
	resolve := func(x ast.Expr) types.Object {
		switch x := ast.Unparen(x).(type) {
		case *ast.Ident:
			return pass.Info.Uses[x]
		case *ast.SelectorExpr:
			if sel, ok := pass.Info.Selections[x]; ok {
				return sel.Obj()
			}
			return pass.Info.Uses[x.Sel]
		}
		return nil
	}

	for _, fd := range summary.Functions(pass) {
		exempt := constructorExempt(fd.Name.Name)
		// Positions inside &x arguments of atomic calls — the same
		// ident must not double as a plain access.
		atomicArgs := map[*ast.Ident]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			_, pkgName := analysis.CalleeName(pass.Info, call)
			if pkgName != "atomic" || len(call.Args) == 0 {
				return true
			}
			for _, a := range call.Args {
				un, ok := ast.Unparen(a).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				target := ast.Unparen(un.X)
				record(resolve(target), un.Pos(), true)
				ast.Inspect(target, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						atomicArgs[id] = true
					}
					return true
				})
			}
			return true
		})
		if exempt {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if !atomicArgs[x] {
					record(pass.Info.Uses[x], x.Pos(), false)
				}
			case *ast.SelectorExpr:
				if !atomicArgs[x.Sel] {
					record(resolve(x), x.Pos(), false)
				}
				// Descend into x.X but not x.Sel (already handled).
				ast.Inspect(x.X, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && !atomicArgs[id] {
						record(pass.Info.Uses[id], id.Pos(), false)
					}
					return true
				})
				return false
			}
			return true
		})
	}

	g := ptr.Of(pass)
	var objs []types.Object
	for obj := range accesses {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	for _, obj := range objs {
		var hasAtomic bool
		for _, a := range accesses[obj] {
			if a.atomic {
				hasAtomic = true
			}
		}
		if !hasAtomic {
			continue
		}
		// A local whose address provably never leaves its function
		// cannot be shared, so its plain accesses cannot race with its
		// atomics — mixing them is odd style but not a bug. Escaped,
		// published or NVM-resident objects stay in: recovery and other
		// goroutines both count as "elsewhere".
		if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Parent() != pass.Pkg.Scope() {
			if fo := g.FrameObj(v); fo != nil && !fo.Escapes && !fo.Published && !fo.NVM {
				continue
			}
		}
		// One report per object, at its first plain access in file order.
		as := accesses[obj]
		sort.Slice(as, func(i, j int) bool { return as[i].pos < as[j].pos })
		for _, a := range as {
			if !a.atomic {
				pass.Reportf(a.pos, "%s is accessed atomically elsewhere in this package; this plain access races with the atomics",
					obj.Name())
				break
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Rules on go-closures.

func checkGoClosures(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Loop-variable objects of every enclosing loop, collected on the
	// way down.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		checkClosure(pass, fd, gs, lit)
		return true
	})
}

// loopVarsEnclosing returns the objects of loop variables of loops in
// fd that enclose pos.
func loopVarsEnclosing(pass *analysis.Pass, fd *ast.FuncDecl, pos token.Pos) map[types.Object]bool {
	vars := map[types.Object]bool{}
	addDef := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch l := n.(type) {
		case *ast.RangeStmt:
			if l.Body != nil && l.Body.Pos() <= pos && pos < l.Body.End() {
				addDef(l.Key)
				addDef(l.Value)
			}
		case *ast.ForStmt:
			if l.Body != nil && l.Body.Pos() <= pos && pos < l.Body.End() {
				if init, ok := l.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
					for _, lhs := range init.Lhs {
						addDef(lhs)
					}
				}
			}
		}
		return true
	})
	return vars
}

// captured reports whether obj is a variable declared in fd but outside
// lit — captured by the closure rather than a parameter or local.
func captured(obj types.Object, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	pos := v.Pos()
	inFunc := fd.Pos() <= pos && pos < fd.End()
	inLit := lit.Pos() <= pos && pos < lit.End()
	return inFunc && !inLit
}

func checkClosure(pass *analysis.Pass, fd *ast.FuncDecl, gs *ast.GoStmt, lit *ast.FuncLit) {
	loopVars := loopVarsEnclosing(pass, fd, gs.Pos())

	// A closure that takes any lock is assumed to guard its captured
	// writes with it; the lockset rules live in lockcheck.
	locksInside := false
	onceDoRanges := make([][2]token.Pos, 0, 2)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, _ := analysis.CalleeName(pass.Info, call)
		switch name {
		case "Lock", "RLock":
			locksInside = true
		case "Do":
			if recv := analysis.ReceiverType(pass.Info, call); recv != nil && analysis.NamedFrom(recv, "sync", "Once") {
				if len(call.Args) == 1 {
					onceDoRanges = append(onceDoRanges, [2]token.Pos{call.Args[0].Pos(), call.Args[0].End()})
				}
			}
		}
		return true
	})
	inOnce := func(pos token.Pos) bool {
		for _, r := range onceDoRanges {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}

	// Rule: captured loop variable (reads count — pass it as an
	// argument instead).
	reportedLoopVar := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || !loopVars[obj] || !captured(obj, fd, lit) || reportedLoopVar[obj] {
			return true
		}
		reportedLoopVar[obj] = true
		pass.Reportf(id.Pos(), "goroutine captures loop variable %s; pass it as an argument like forEachMorsel passes the worker index",
			obj.Name())
		return true
	})

	// Rules: unsynchronized captured writes and morsel-slot escapes.
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		var targets []ast.Expr
		switch st := n.(type) {
		case *ast.AssignStmt:
			targets = st.Lhs
		case *ast.IncDecStmt:
			targets = []ast.Expr{st.X}
		default:
			return true
		}
		for _, lhs := range targets {
			switch target := ast.Unparen(lhs).(type) {
			case *ast.Ident:
				obj := pass.Info.Uses[target]
				if obj == nil || !captured(obj, fd, lit) || loopVars[obj] {
					continue
				}
				if locksInside || inOnce(target.Pos()) {
					continue
				}
				pass.Reportf(target.Pos(), "goroutine writes captured variable %s without synchronization; guard it with a mutex or sync.Once, or make it a per-worker slot",
					obj.Name())
			case *ast.IndexExpr:
				baseID, ok := ast.Unparen(target.X).(*ast.Ident)
				if !ok {
					continue
				}
				idxID, ok := ast.Unparen(target.Index).(*ast.Ident)
				if !ok {
					continue
				}
				base := pass.Info.Uses[baseID]
				idx := pass.Info.Uses[idxID]
				if base == nil || idx == nil {
					continue
				}
				if captured(base, fd, lit) && captured(idx, fd, lit) && !loopVars[idx] {
					pass.Reportf(target.Pos(), "goroutine writes %s[%s] with a captured index: each worker must own its slot (pass the index as an argument)",
						baseID.Name, idxID.Name)
				}
			}
		}
		return true
	})
}
