package nvm

import (
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// stubInjector drives the FaultInjector hooks deterministically.
type stubInjector struct {
	allocErr   error
	barrier    time.Duration
	drain      time.Duration
	allocCalls atomic.Int64
	drainCalls atomic.Int64
}

func (s *stubInjector) AllocFault(size uint64) error {
	s.allocCalls.Add(1)
	return s.allocErr
}
func (s *stubInjector) BarrierDelay() time.Duration { return s.barrier }
func (s *stubInjector) DrainDelay() time.Duration {
	s.drainCalls.Add(1)
	return s.drain
}

func TestFaultInjectorAlloc(t *testing.T) {
	h, err := Create(filepath.Join(t.TempDir(), "heap"), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	inj := &stubInjector{allocErr: errors.New("injected: " + ErrOutOfMemory.Error())}
	h.SetFaultInjector(inj)
	before := h.Stats()
	if _, err := h.Alloc(64); err == nil {
		t.Fatal("Alloc with failing injector succeeded")
	}
	if inj.allocCalls.Load() != 1 {
		t.Fatalf("injector consulted %d times, want 1", inj.allocCalls.Load())
	}
	// The faulted Alloc changed no heap state: counters and the arena
	// watermark are untouched.
	after := h.Stats()
	if after.Allocs != before.Allocs || after.BytesUsed != before.BytesUsed {
		t.Fatalf("faulted Alloc mutated heap state: %+v -> %+v", before, after)
	}

	// Disarming restores normal allocation.
	h.SetFaultInjector(nil)
	if _, err := h.Alloc(64); err != nil {
		t.Fatalf("Alloc after disarm: %v", err)
	}

	// A passing injector is transparent.
	inj.allocErr = nil
	h.SetFaultInjector(inj)
	if _, err := h.Alloc(64); err != nil {
		t.Fatalf("Alloc with passing injector: %v", err)
	}
}

func TestFaultInjectorDrainStall(t *testing.T) {
	h, err := Create(filepath.Join(t.TempDir(), "heap"), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	inj := &stubInjector{drain: 20 * time.Millisecond}
	h.SetFaultInjector(inj)
	start := time.Now()
	h.Drain()
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("Drain with injected stall returned in %v, want >= ~20ms", el)
	}
	if inj.drainCalls.Load() != 1 {
		t.Fatalf("drain hook consulted %d times, want 1", inj.drainCalls.Load())
	}

	// Barrier spikes ride the fence path.
	inj.drain = 0
	inj.barrier = 5 * time.Millisecond
	start = time.Now()
	h.Fence()
	if el := time.Since(start); el < 4*time.Millisecond {
		t.Fatalf("Fence with injected spike returned in %v, want >= ~5ms", el)
	}
}
