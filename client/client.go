// Package client is the Go client for a hyrisenv database served over
// TCP by hyrise-nvd (or hyrisenv.DB.Serve). It speaks the internal/wire
// protocol and provides:
//
//   - Dial: a pooled client. Connections are created lazily up to the
//     pool size, health-checked with a ping when they have been idle,
//     and re-dialed transparently when the server restarts.
//   - Auto-commit reads (Select, Count, ScanAll, Row, SelectRange): each
//     runs in a fresh read-only snapshot on the server; because they are
//     idempotent the client retries them once on a fresh connection
//     after a network failure — which is what makes a server restart
//     nearly invisible to read traffic.
//   - Begin/BeginAt: a typed Tx mirroring hyrisenv.Tx, pinned to one
//     pooled connection for its lifetime.
//
// Every request-path method has a context-accepting variant; the
// context deadline is propagated to the server in the frame header, so
// an expired request comes back as a structured error
// (context.DeadlineExceeded), not a hung connection.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"hyrisenv"
	"hyrisenv/internal/backoff"
	"hyrisenv/internal/wire"
)

// Errors mapped from server error frames. Request errors leave the
// connection usable; only network failures discard it.
var (
	ErrConflict     = hyrisenvError("write-write conflict")
	ErrNotActive    = hyrisenvError("transaction is not active")
	ErrRowNotFound  = hyrisenvError("row not visible or already dead")
	ErrEpochChanged = hyrisenvError("table merged since this transaction read it")
	ErrReadOnly     = hyrisenvError("transaction is read-only")
	ErrNoSuchTable  = hyrisenvError("no such table")
	ErrTableExists  = hyrisenvError("table already exists")
	ErrNoSuchTxn    = hyrisenvError("no such transaction on this connection")
	ErrBadColumn    = hyrisenvError("unknown column")
	ErrShuttingDown = hyrisenvError("server is shutting down")
	ErrOverloaded   = hyrisenvError("server is overloaded")
	ErrOutOfSpace   = hyrisenvError("server is out of persistent space")
	ErrClosed       = hyrisenvError("client is closed")
	ErrTxDone       = hyrisenvError("transaction already finished")
)

func hyrisenvError(msg string) error { return errors.New("client: " + msg) }

// ServerError carries an error frame the client has no sentinel for.
type ServerError struct {
	Code uint16
	Msg  string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("client: server error %d: %s", e.Code, e.Msg)
}

func errFromResp(e wire.ErrorResp) error {
	var sentinel error
	switch e.Code {
	case wire.CodeConflict:
		sentinel = ErrConflict
	case wire.CodeNotActive:
		sentinel = ErrNotActive
	case wire.CodeRowNotFound:
		sentinel = ErrRowNotFound
	case wire.CodeEpochChanged:
		sentinel = ErrEpochChanged
	case wire.CodeReadOnly:
		sentinel = ErrReadOnly
	case wire.CodeNoSuchTable:
		sentinel = ErrNoSuchTable
	case wire.CodeTableExists:
		sentinel = ErrTableExists
	case wire.CodeNoSuchTxn:
		sentinel = ErrNoSuchTxn
	case wire.CodeBadColumn:
		sentinel = ErrBadColumn
	case wire.CodeShuttingDown:
		sentinel = ErrShuttingDown
	case wire.CodeOverloaded:
		// Deliberately not retried: the server sheds load by answering
		// fast, and an immediate retry would defeat that. Callers decide
		// when to back off.
		sentinel = ErrOverloaded
	case wire.CodeOutOfSpace:
		// The server's persistent heap is exhausted: writes fail with
		// this sentinel while reads keep working — the degraded
		// read-only mode callers branch on.
		sentinel = ErrOutOfSpace
	case wire.CodeDeadline:
		// Deadline errors surface as the standard context error so
		// callers can use one errors.Is check for local and remote
		// expiry.
		return fmt.Errorf("%w (server: %s)", context.DeadlineExceeded, e.Msg)
	case wire.CodeInternal, wire.CodeBadRequest, wire.CodeTooLarge:
		// No sentinel: these indicate a bug (ours or the server's), not
		// a condition callers branch on. Listed explicitly so the switch
		// stays exhaustive and a new code cannot silently land here.
		return &ServerError{Code: e.Code, Msg: e.Msg}
	default:
		// Unknown code from a newer server.
		return &ServerError{Code: e.Code, Msg: e.Msg}
	}
	return fmt.Errorf("%w: %s", sentinel, e.Msg)
}

// Options tunes Dial. The zero value picks sensible defaults.
type Options struct {
	// PoolSize caps pooled connections (default 4). Connections are
	// shared: many requests multiplex over one connection as tagged
	// in-flight frames (up to the pipeline depth the server advertised
	// in the handshake), so the pool only needs to grow for throughput,
	// not for concurrency.
	PoolSize int
	// DialTimeout bounds establishing one TCP connection + handshake
	// (default 5 s).
	DialTimeout time.Duration
	// RequestTimeout is the default per-request deadline applied by the
	// non-context methods (default 30 s; negative disables).
	RequestTimeout time.Duration
	// HealthCheckAfter pings a pooled connection that has been idle
	// longer than this before reuse (default 30 s; negative disables).
	HealthCheckAfter time.Duration
	// MaxFrame bounds response payloads (default wire.DefaultMaxPayload).
	MaxFrame uint32
	// ReadRetries is how many times an idempotent read is re-sent on a
	// fresh connection after a network failure (default 1; negative
	// disables retries). Raising it hardens read traffic against
	// sustained connection faults — writes are never retried regardless.
	ReadRetries int
	// ConnWrapper, when non-nil, wraps every dialed connection before
	// the handshake — the hook the fault-injection plane
	// (internal/fault) uses to inject transport faults on the client
	// side. The wrapper must preserve net.Conn deadline semantics.
	ConnWrapper func(net.Conn) net.Conn
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.PoolSize <= 0 {
		out.PoolSize = 4
	}
	if out.DialTimeout == 0 {
		out.DialTimeout = 5 * time.Second
	}
	if out.RequestTimeout == 0 {
		out.RequestTimeout = 30 * time.Second
	}
	if out.HealthCheckAfter == 0 {
		out.HealthCheckAfter = 30 * time.Second
	}
	if out.MaxFrame == 0 {
		out.MaxFrame = wire.DefaultMaxPayload
	}
	if out.ReadRetries == 0 {
		out.ReadRetries = 1
	}
	if out.ReadRetries < 0 {
		out.ReadRetries = 0
	}
	return out
}

// Client is a pool of multiplexed connections to one server. It is
// safe for concurrent use.
type Client struct {
	addr string
	opts Options
	mode hyrisenv.Mode

	mu      sync.Mutex
	conns   []*wconn
	dialing int // dials in flight, counted against PoolSize
	closed  bool
}

// Dial connects to a hyrise-nvd server and verifies the protocol
// handshake on one connection (which is then pooled).
func Dial(addr string, opts Options) (*Client, error) {
	c := &Client{
		addr: addr,
		opts: opts.withDefaults(),
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.DialTimeout)
	defer cancel()
	wc, err := c.dial(ctx)
	if err != nil {
		return nil, err
	}
	c.mode = hyrisenv.Mode(wc.serverMode)
	c.mu.Lock()
	c.conns = append(c.conns, wc)
	c.mu.Unlock()
	return c, nil
}

// Mode reports the durability mode of the serving engine, learned in
// the handshake.
func (c *Client) Mode() hyrisenv.Mode { return c.mode }

// Addr returns the server address this client dials.
func (c *Client) Addr() string { return c.addr }

// Close closes all pooled connections. In-flight requests fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := c.conns
	c.conns = nil
	c.mu.Unlock()
	for _, wc := range conns {
		wc.close()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Pool internals.

// wconn is one established, handshaken connection, multiplexing many
// in-flight requests. A single reader goroutine demultiplexes response
// frames to waiters by request ID; writers serialize on wmu so frames
// (and ID assignment) stay ordered on the wire.
type wconn struct {
	nc          net.Conn
	br          *bufio.Reader // owned by readLoop after the handshake
	maxFrame    uint32
	serverMode  uint8
	version     uint16 // negotiated protocol version
	maxInFlight int    // server's advertised pipeline depth (≥1)

	wmu   sync.Mutex // serializes reqID assignment and frame writes
	bw    *bufio.Writer
	reqID uint64

	mu       sync.Mutex
	pending  map[uint64]chan wire.Frame // reqID → waiter (buffered, cap 1)
	pins     int                        // live Txs referencing this conn
	broken   bool
	readErr  error // why the conn broke, for late arrivals
	lastUsed time.Time
}

func (w *wconn) close() { w.fail(net.ErrClosed) }

// fail marks the connection broken exactly once, closes the socket, and
// wakes every pending waiter with the failure.
func (w *wconn) fail(err error) {
	w.mu.Lock()
	if w.broken {
		w.mu.Unlock()
		return
	}
	w.broken = true
	w.readErr = err
	pend := w.pending
	w.pending = nil
	w.mu.Unlock()
	w.nc.Close()
	for _, ch := range pend {
		close(ch)
	}
}

func (w *wconn) isBroken() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.broken
}

// inflight reports how many requests are awaiting responses.
func (w *wconn) inflight() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.pending)
}

func (w *wconn) idleFor() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return time.Since(w.lastUsed)
}

func (w *wconn) pin() {
	w.mu.Lock()
	w.pins++
	w.mu.Unlock()
}

func (w *wconn) unpin() {
	w.mu.Lock()
	w.pins--
	w.mu.Unlock()
}

// idleUnpinned reports whether nothing references the conn right now —
// no in-flight request and no live Tx.
func (w *wconn) idleUnpinned() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.pending) == 0 && w.pins == 0
}

// readLoop is the connection's only reader after the handshake: it
// routes each response frame to the waiter that sent the matching
// request. A frame nobody is waiting for belongs to a request whose
// caller gave up (context expiry) and is dropped. Any read error breaks
// the connection and wakes all waiters.
func (w *wconn) readLoop() {
	for {
		//nvmcheck:ignore deadlinecheck the pipelined reader blocks between responses by design; liveness comes from per-request context deadlines in roundTrip and the pool's idle health check
		f, err := wire.ReadFrame(w.br, w.maxFrame)
		if err != nil {
			w.fail(err)
			return
		}
		w.mu.Lock()
		ch := w.pending[f.ReqID]
		delete(w.pending, f.ReqID)
		w.lastUsed = time.Now()
		w.mu.Unlock()
		if ch != nil {
			ch <- f // buffered: never blocks the reader
		}
	}
}

// roundTrip sends one request and waits for its response, applying the
// context deadline both remotely (frame header timeout) and locally
// (abandoning the wait; the reader discards the late response). Other
// requests proceed on the same connection while this one waits.
func (w *wconn) roundTrip(ctx context.Context, t wire.Type, payload []byte) (wire.Frame, error) {
	if err := ctx.Err(); err != nil {
		return wire.Frame{}, err
	}
	f := wire.Frame{Type: t, Payload: payload}
	dl, hasDL := ctx.Deadline()
	if hasDL {
		remain := time.Until(dl)
		if remain <= 0 {
			return wire.Frame{}, context.DeadlineExceeded
		}
		if ms := remain.Milliseconds(); ms > 0 {
			f.TimeoutMs = uint32(min(ms, int64(^uint32(0))))
		} else {
			f.TimeoutMs = 1
		}
	}
	ch := make(chan wire.Frame, 1)

	w.wmu.Lock()
	w.mu.Lock()
	if w.broken {
		err := w.readErr
		w.mu.Unlock()
		w.wmu.Unlock()
		if err == nil {
			err = net.ErrClosed
		}
		return wire.Frame{}, err
	}
	w.reqID++
	f.ReqID = w.reqID
	w.pending[f.ReqID] = ch
	w.mu.Unlock()
	if hasDL {
		w.nc.SetWriteDeadline(dl) //nolint:errcheck
	} else {
		w.nc.SetWriteDeadline(time.Time{}) //nolint:errcheck
	}
	//nvmcheck:ignore lockcheck wmu serializes frame writes on purpose; the write deadline set from ctx above bounds the hold, and a deadline-less caller accepts sharing the connection's fate on a stalled peer
	err := wire.WriteFrame(w.bw, f)
	if err == nil {
		err = w.bw.Flush()
	}
	w.wmu.Unlock()
	if err != nil {
		w.forget(f.ReqID)
		w.fail(err)
		return wire.Frame{}, err
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			w.mu.Lock()
			err := w.readErr
			w.mu.Unlock()
			if err == nil {
				err = net.ErrClosed
			}
			return wire.Frame{}, err
		}
		return resp, nil
	case <-ctx.Done():
		w.forget(f.ReqID)
		return wire.Frame{}, ctx.Err()
	}
}

// forget deregisters an abandoned request so its eventual response is
// dropped by the reader instead of delivered.
func (w *wconn) forget(id uint64) {
	w.mu.Lock()
	delete(w.pending, id)
	w.mu.Unlock()
}

// dial establishes and handshakes one connection (no pool accounting).
// The handshake runs serially on the calling goroutine; the reader
// goroutine takes over the receive side only once the connection is
// established.
func (c *Client) dial(ctx context.Context) (*wconn, error) {
	d := net.Dialer{}
	nc, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", c.addr, err)
	}
	if w := c.opts.ConnWrapper; w != nil {
		nc = w(nc)
	}
	wc := &wconn{
		nc:       nc,
		br:       bufio.NewReader(nc),
		bw:       bufio.NewWriter(nc),
		maxFrame: c.opts.MaxFrame,
		pending:  make(map[uint64]chan wire.Frame),
		lastUsed: time.Now(),
	}
	// Handshake deadline: without one, a dial to a black-holed server
	// would hang in the Hello exchange forever. The caller's context can
	// only tighten it. Cleared once the connection is established.
	hsDL := time.Now().Add(10 * time.Second)
	if dl, ok := ctx.Deadline(); ok && dl.Before(hsDL) {
		hsDL = dl
	}
	nc.SetDeadline(hsDL) //nolint:errcheck
	wc.reqID = 1
	hf := wire.Frame{Type: wire.TypeHello, ReqID: wc.reqID, Payload: wire.Hello{Version: wire.Version}.Encode()}
	if err := wire.WriteFrame(wc.bw, hf); err == nil {
		err = wc.bw.Flush()
	}
	if err != nil {
		nc.Close()
		return nil, err
	}
	f, err := wire.ReadFrame(wc.br, wc.maxFrame)
	if err != nil {
		nc.Close()
		return nil, err
	}
	if f.Type != wire.TypeHelloOK {
		nc.Close()
		if f.Type == wire.TypeError {
			if e, derr := wire.DecodeErrorResp(f.Payload); derr == nil {
				return nil, fmt.Errorf("client: handshake rejected: %s", e.Msg)
			}
		}
		return nil, fmt.Errorf("client: unexpected handshake reply %s", f.Type)
	}
	ok, err := wire.DecodeHelloOK(f.Payload)
	if err != nil {
		nc.Close()
		return nil, err
	}
	// The server negotiates down to the highest version both sides
	// speak; anything in [MinVersion, Version] is fine. A v1 server
	// advertises no pipeline depth, so the conn runs serially (depth 1).
	if ok.Version < wire.MinVersion || ok.Version > wire.Version {
		nc.Close()
		return nil, fmt.Errorf("client: server negotiated unsupported protocol %d", ok.Version)
	}
	wc.version = ok.Version
	wc.serverMode = ok.Mode
	wc.maxInFlight = int(ok.MaxInFlight)
	if wc.maxInFlight < 1 {
		wc.maxInFlight = 1
	}
	nc.SetDeadline(time.Time{}) //nolint:errcheck
	go wc.readLoop()
	return wc, nil
}

// conn picks a connection for one request: the least-loaded live
// connection, or a fresh dial when every existing connection is busy
// and the pool has room. Connections are shared — callers do not hold
// them exclusively and there is nothing to release.
func (c *Client) conn(ctx context.Context) (*wconn, error) {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		live := c.conns[:0]
		for _, wc := range c.conns {
			if !wc.isBroken() {
				live = append(live, wc)
			}
		}
		c.conns = live
		var best *wconn
		bestLoad := 0
		for _, wc := range c.conns {
			if n := wc.inflight(); best == nil || n < bestLoad {
				best, bestLoad = wc, n
			}
		}
		canDial := len(c.conns)+c.dialing < c.opts.PoolSize
		if best != nil && (bestLoad == 0 || !canDial) {
			c.mu.Unlock()
			if h := c.opts.HealthCheckAfter; h > 0 && best.inflight() == 0 && best.idleFor() > h {
				// Bound the health check tightly: a dead server must not
				// eat the whole request deadline before we re-pick.
				pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
				_, err := best.roundTrip(pctx, wire.TypePing, nil)
				cancel()
				if err != nil {
					best.close() // stale conn (e.g. server restarted); re-pick
					continue
				}
			}
			return best, nil
		}
		c.dialing++
		c.mu.Unlock()
		wc, err := c.dial(ctx)
		c.mu.Lock()
		c.dialing--
		if err != nil {
			c.mu.Unlock()
			if best != nil {
				return best, nil // scale-out failed; share the busy conn
			}
			return nil, err
		}
		if c.closed {
			c.mu.Unlock()
			wc.close()
			return nil, ErrClosed
		}
		c.conns = append(c.conns, wc)
		c.mu.Unlock()
		return wc, nil
	}
}

// do runs one request on a pooled connection. Idempotent requests
// (retriable=true) are retried up to Options.ReadRetries times on a
// fresh connection after a network error — the reconnect path that
// rides out a server restart (and, with more retries configured,
// sustained injected connection faults). Writes are never retried:
// after a network failure the client cannot know whether the server
// applied them, so the definite network error surfaces to the caller
// instead of a possible double-apply.
func (c *Client) do(ctx context.Context, t wire.Type, payload []byte, retriable bool) (wire.Frame, error) {
	var lastErr error
	attempts := 1
	if retriable {
		attempts = 1 + c.opts.ReadRetries
	}
	for i := 0; i < attempts; i++ {
		wc, err := c.conn(ctx)
		if err != nil {
			return wire.Frame{}, err
		}
		f, err := wc.roundTrip(ctx, t, payload)
		if err == nil {
			if f.Type == wire.TypeError {
				e, derr := wire.DecodeErrorResp(f.Payload)
				if derr != nil {
					return wire.Frame{}, derr
				}
				return wire.Frame{}, errFromResp(e)
			}
			return f, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return wire.Frame{}, err
		}
		// A network failure usually means the server went away; other
		// pooled connections are probably equally dead but may not have
		// noticed yet, so proactively drop the unreferenced ones and let
		// the retry dial fresh — after a jittered backoff, so a fleet of
		// clients doesn't hammer a restarting server in lockstep.
		c.purgeStale()
		if i+1 < attempts {
			if serr := backoff.Sleep(ctx, reconnectBackoff, i); serr != nil {
				return wire.Frame{}, lastErr
			}
		}
	}
	return wire.Frame{}, lastErr
}

// reconnectBackoff paces retries after network failures: capped
// exponential with jitter (see internal/backoff).
var reconnectBackoff = backoff.Policy{Base: 2 * time.Millisecond, Max: 100 * time.Millisecond}

// purgeStale closes every pooled connection with no in-flight request
// and no live Tx. Connections that are in use are left alone — if the
// server really went away their reader notices on its own.
func (c *Client) purgeStale() {
	c.mu.Lock()
	var stale []*wconn
	live := c.conns[:0]
	for _, wc := range c.conns {
		if wc.idleUnpinned() {
			stale = append(stale, wc)
		} else {
			live = append(live, wc)
		}
	}
	c.conns = live
	c.mu.Unlock()
	for _, wc := range stale {
		wc.close()
	}
}

// reqCtx builds the default context for the non-context methods.
func (c *Client) reqCtx() (context.Context, context.CancelFunc) {
	if c.opts.RequestTimeout > 0 {
		return context.WithTimeout(context.Background(), c.opts.RequestTimeout)
	}
	return context.Background(), func() {}
}

// ---------------------------------------------------------------------------
// Connection-level API.

// Ping checks server liveness over one pooled connection.
func (c *Client) Ping() error {
	ctx, cancel := c.reqCtx()
	defer cancel()
	return c.PingContext(ctx)
}

// PingContext is Ping with a caller-supplied context.
func (c *Client) PingContext(ctx context.Context) error {
	_, err := c.do(ctx, wire.TypePing, nil, true)
	return err
}

// CreateTable creates a table on the server; indexed names columns to
// maintain secondary indexes on.
func (c *Client) CreateTable(name string, cols []hyrisenv.Column, indexed ...string) error {
	ctx, cancel := c.reqCtx()
	defer cancel()
	return c.CreateTableContext(ctx, name, cols, indexed...)
}

// CreateTableContext is CreateTable with a caller-supplied context.
func (c *Client) CreateTableContext(ctx context.Context, name string, cols []hyrisenv.Column, indexed ...string) error {
	req := wire.CreateTableReq{Name: name, Indexed: indexed}
	for _, col := range cols {
		req.Cols = append(req.Cols, wire.ColumnDef{Name: col.Name, Type: uint8(col.Type)})
	}
	_, err := c.do(ctx, wire.TypeCreateTable, req.Encode(), false)
	return err
}

// TableStat describes one table on the server.
type TableStat struct {
	Name      string
	ID        uint32
	MainRows  uint64
	DeltaRows uint64
	Rows      uint64
}

// Tables lists the server catalog.
func (c *Client) Tables() ([]TableStat, error) {
	ctx, cancel := c.reqCtx()
	defer cancel()
	return c.TablesContext(ctx)
}

// TablesContext is Tables with a caller-supplied context.
func (c *Client) TablesContext(ctx context.Context) ([]TableStat, error) {
	f, err := c.do(ctx, wire.TypeTables, nil, true)
	if err != nil {
		return nil, err
	}
	resp, err := wire.DecodeTablesResp(f.Payload)
	if err != nil {
		return nil, err
	}
	out := make([]TableStat, len(resp.Tables))
	for i, t := range resp.Tables {
		out[i] = TableStat(t)
	}
	return out, nil
}

// Stats reports the server's recovery and NVM statistics.
type Stats struct {
	Mode           hyrisenv.Mode
	Uptime         time.Duration
	Recovery       time.Duration // cost of the server's last engine open
	TablesOpened   int
	CheckpointLoad time.Duration
	LogReplay      time.Duration
	IndexRebuild   time.Duration
	ReplayRecords  int
	RolledBack     int
	EntriesUndone  int
	NVMFlushes     uint64
	NVMFences      uint64
	NVMBytesUsed   uint64
}

// Stats fetches server statistics.
func (c *Client) Stats() (Stats, error) {
	ctx, cancel := c.reqCtx()
	defer cancel()
	return c.StatsContext(ctx)
}

// StatsContext is Stats with a caller-supplied context.
func (c *Client) StatsContext(ctx context.Context) (Stats, error) {
	f, err := c.do(ctx, wire.TypeStats, nil, true)
	if err != nil {
		return Stats{}, err
	}
	resp, err := wire.DecodeStatsResp(f.Payload)
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		Mode:           hyrisenv.Mode(resp.Mode),
		Uptime:         resp.Uptime,
		Recovery:       resp.Recovery,
		TablesOpened:   int(resp.TablesOpened),
		CheckpointLoad: resp.CheckpointLoad,
		LogReplay:      resp.LogReplay,
		IndexRebuild:   resp.IndexRebuild,
		ReplayRecords:  int(resp.ReplayRecords),
		RolledBack:     int(resp.RolledBack),
		EntriesUndone:  int(resp.EntriesUndone),
		NVMFlushes:     resp.NVMFlushes,
		NVMFences:      resp.NVMFences,
		NVMBytesUsed:   resp.NVMBytesUsed,
	}, nil
}

// ---------------------------------------------------------------------------
// Auto-commit reads. Each runs in a fresh read-only snapshot server-side
// and is retried once on a new connection after a network failure.

func wirePreds(preds []hyrisenv.Pred) []wire.Pred {
	out := make([]wire.Pred, len(preds))
	for i, p := range preds {
		out[i] = wire.Pred{Col: p.Col, Op: uint8(p.Op), Val: p.Val}
	}
	return out
}

// Select returns the row IDs satisfying all predicates.
func (c *Client) Select(table string, preds ...hyrisenv.Pred) ([]uint64, error) {
	ctx, cancel := c.reqCtx()
	defer cancel()
	return c.SelectContext(ctx, table, preds...)
}

// SelectContext is Select with a caller-supplied context.
func (c *Client) SelectContext(ctx context.Context, table string, preds ...hyrisenv.Pred) ([]uint64, error) {
	return c.selectTxn(ctx, 0, table, preds, true)
}

func (c *Client) selectTxn(ctx context.Context, txid uint64, table string, preds []hyrisenv.Pred, retriable bool) ([]uint64, error) {
	req := wire.SelectReq{Txn: txid, Table: table, Preds: wirePreds(preds)}
	f, err := c.do(ctx, wire.TypeSelect, req.Encode(), retriable)
	if err != nil {
		return nil, err
	}
	resp, err := wire.DecodeRowIDsResp(f.Payload)
	if err != nil {
		return nil, err
	}
	return resp.Rows, nil
}

// ScanAll returns every visible row ID.
func (c *Client) ScanAll(table string) ([]uint64, error) {
	return c.Select(table)
}

// ScanAllContext is ScanAll with a caller-supplied context.
func (c *Client) ScanAllContext(ctx context.Context, table string) ([]uint64, error) {
	return c.SelectContext(ctx, table)
}

// Count returns the number of rows satisfying all predicates.
func (c *Client) Count(table string, preds ...hyrisenv.Pred) (int, error) {
	ctx, cancel := c.reqCtx()
	defer cancel()
	return c.CountContext(ctx, table, preds...)
}

// CountContext is Count with a caller-supplied context.
func (c *Client) CountContext(ctx context.Context, table string, preds ...hyrisenv.Pred) (int, error) {
	return c.countTxn(ctx, 0, table, preds, true)
}

func (c *Client) countTxn(ctx context.Context, txid uint64, table string, preds []hyrisenv.Pred, retriable bool) (int, error) {
	req := wire.SelectReq{Txn: txid, Table: table, Preds: wirePreds(preds)}
	f, err := c.do(ctx, wire.TypeCount, req.Encode(), retriable)
	if err != nil {
		return 0, err
	}
	resp, err := wire.DecodeCountResp(f.Payload)
	if err != nil {
		return 0, err
	}
	return int(resp.N), nil
}

// SelectRange returns rows whose named column falls in [lo, hi).
func (c *Client) SelectRange(table, col string, lo, hi hyrisenv.Value) ([]uint64, error) {
	ctx, cancel := c.reqCtx()
	defer cancel()
	return c.SelectRangeContext(ctx, table, col, lo, hi)
}

// SelectRangeContext is SelectRange with a caller-supplied context.
func (c *Client) SelectRangeContext(ctx context.Context, table, col string, lo, hi hyrisenv.Value) ([]uint64, error) {
	return c.rangeTxn(ctx, 0, table, col, lo, hi, true)
}

func (c *Client) rangeTxn(ctx context.Context, txid uint64, table, col string, lo, hi hyrisenv.Value, retriable bool) ([]uint64, error) {
	req := wire.RangeReq{Txn: txid, Table: table, Col: col, Lo: lo, Hi: hi}
	f, err := c.do(ctx, wire.TypeRange, req.Encode(), retriable)
	if err != nil {
		return nil, err
	}
	resp, err := wire.DecodeRowIDsResp(f.Payload)
	if err != nil {
		return nil, err
	}
	return resp.Rows, nil
}

// Row materializes all columns of a row.
func (c *Client) Row(table string, row uint64) ([]hyrisenv.Value, error) {
	ctx, cancel := c.reqCtx()
	defer cancel()
	return c.RowContext(ctx, table, row)
}

// RowContext is Row with a caller-supplied context.
func (c *Client) RowContext(ctx context.Context, table string, row uint64) ([]hyrisenv.Value, error) {
	return c.rowTxn(ctx, 0, table, row, true)
}

func (c *Client) rowTxn(ctx context.Context, txid uint64, table string, row uint64, retriable bool) ([]hyrisenv.Value, error) {
	req := wire.RowReq{Txn: txid, Table: table, Row: row}
	f, err := c.do(ctx, wire.TypeGetRow, req.Encode(), retriable)
	if err != nil {
		return nil, err
	}
	resp, err := wire.DecodeRowResp(f.Payload)
	if err != nil {
		return nil, err
	}
	return resp.Vals, nil
}
