package core

import (
	"testing"

	"hyrisenv/internal/storage"
	"hyrisenv/internal/txn"
)

func TestMaintainAutoMerges(t *testing.T) {
	e, err := Open(Config{Mode: txn.ModeNone, MergeThresholdRows: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tbl, _ := e.CreateTable("orders", ordersSchema(t), "id")
	insertOrders(t, e, tbl, 5)
	if err := e.Maintain(); err != nil {
		t.Fatal(err)
	}
	if tbl.MainRows() != 0 {
		t.Fatal("merged below threshold")
	}
	insertOrders(t, e, tbl, 10)
	if err := e.Maintain(); err != nil {
		t.Fatal(err)
	}
	if tbl.MainRows() != 15 || tbl.DeltaRows() != 0 {
		t.Fatalf("auto-merge did not run: main=%d delta=%d", tbl.MainRows(), tbl.DeltaRows())
	}
}

func TestMaintainSkipsBusyTables(t *testing.T) {
	e, err := Open(Config{Mode: txn.ModeNone, MergeThresholdRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tbl, _ := e.CreateTable("orders", ordersSchema(t), "id")
	insertOrders(t, e, tbl, 3)
	// An in-flight transaction holds a row: merge must be skipped, not
	// fail Maintain.
	tx := e.Begin()
	tx.Insert(tbl, []storage.Value{storage.Int(99), storage.Str("x"), storage.Float(0)})
	if err := e.Maintain(); err != nil {
		t.Fatalf("Maintain on busy table: %v", err)
	}
	if tbl.MainRows() != 0 {
		t.Fatal("merged a busy table")
	}
	tx.Abort()
}

func TestMaintainAutoCheckpoints(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Config{Mode: txn.ModeLog, Dir: dir, CheckpointLogBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tbl, _ := e.CreateTable("orders", ordersSchema(t), "id")
	insertOrders(t, e, tbl, 5)
	if err := e.Maintain(); err != nil {
		t.Fatal(err)
	}
	// The checkpoint rotated the log: the fresh segment is empty.
	if lsn := e.Manager().LogWriter().LSN(); lsn != 0 {
		t.Fatalf("log not rotated: LSN=%d", lsn)
	}
}

func TestEngineCheck(t *testing.T) {
	for name, e := range engines(t) {
		t.Run(name, func(t *testing.T) {
			tbl, _ := e.CreateTable("orders", ordersSchema(t), "id", "customer")
			insertOrders(t, e, tbl, 30)
			e.Merge("orders")
			insertOrders(t, e, tbl, 10)
			// Delete a few to create dead rows.
			tx := e.Begin()
			var rows []uint64
			tbl.ScanVisible(tx.SnapshotCID(), 0, func(r uint64) bool {
				rows = append(rows, r)
				return len(rows) < 3
			})
			for _, r := range rows {
				if err := tx.Delete(tbl, r); err != nil {
					t.Fatal(err)
				}
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}

			rep, err := e.Check()
			if err != nil {
				t.Fatal(err)
			}
			tr := rep.Tables["orders"]
			if tr.VisibleRows != 37 { // 40 inserted, 3 deleted
				t.Fatalf("check report: %+v", tr)
			}
			if tr.DeadRows != 3 {
				t.Fatalf("DeadRows = %d", tr.DeadRows)
			}
			if tr.IndexedCols != 2 {
				t.Fatalf("IndexedCols = %d", tr.IndexedCols)
			}
			if tr.MainRows != 30 || tr.DeltaRows != 10 {
				t.Fatalf("partition rows: %+v", tr)
			}
		})
	}
}

func TestCompressedCheckpointEngineRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Mode: txn.ModeLog, Dir: dir, CompressCheckpoints: true}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.CreateTable("orders", ordersSchema(t), "id")
	insertOrders(t, e, tbl, 40)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	insertOrders(t, e, tbl, 5)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	tbl2, _ := e2.Table("orders")
	if got := countVisible(e2, tbl2); got != 45 {
		t.Fatalf("visible = %d", got)
	}
	// A compressed checkpoint also recovers into a plain-config engine
	// (the format is self-describing).
	e2.Close()
	e3, err := Open(Config{Mode: txn.ModeLog, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	tbl3, _ := e3.Table("orders")
	if got := countVisible(e3, tbl3); got != 45 {
		t.Fatalf("cross-config visible = %d", got)
	}
}
