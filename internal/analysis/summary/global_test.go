package summary_test

import (
	"go/types"
	"strings"
	"testing"

	"hyrisenv/internal/analysis"
	"hyrisenv/internal/analysis/summary"
)

func loadGlobal(t *testing.T) (*summary.Global, *analysis.Program) {
	t.Helper()
	pkgs, err := analysis.Load(analysis.FixtureDir(), "./twopc", "./nvm")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	prog := analysis.NewProgram(pkgs)
	return summary.Graph(prog), prog
}

// TestCrossPackageEdges pins that the callgraph crosses the package
// boundary: the twopc fixture's Decide calls into the fix/nvm stub, and
// the edge must name the export-data callee by full name.
func TestCrossPackageEdges(t *testing.T) {
	g, _ := loadGlobal(t)
	callees := g.Callees("(*fix/twopc.Coord).Decide")
	var putU64, persist bool
	for _, c := range callees {
		if strings.Contains(c, "nvm.Heap).PutU64") {
			putU64 = true
		}
		if strings.Contains(c, "nvm.Heap).Persist") {
			persist = true
		}
	}
	if !putU64 || !persist {
		t.Errorf("cross-package edges missing from Decide: callees=%v", callees)
	}
}

// TestPersistEffectClosure pins the bottom-up effect propagation:
// CoordDelegated.Decide persists only through the persistWord helper,
// so its summary must carry the flush/fence/drain effects transitively.
func TestPersistEffectClosure(t *testing.T) {
	g, _ := loadGlobal(t)
	eff := g.PersistEffects()
	direct := eff["(*fix/twopc.Coord).Decide"]
	if direct&summary.EffPersist == 0 || direct&summary.EffStore == 0 {
		t.Errorf("direct Decide effects incomplete: %b", direct)
	}
	delegated := eff["(*fix/twopc.CoordDelegated).Decide"]
	if delegated&summary.EffPersist == 0 {
		t.Errorf("persist effect did not propagate through the helper: %b", delegated)
	}
	helper := eff["fix/twopc.persistWord"]
	if helper&summary.EffPersist == 0 {
		t.Errorf("helper itself has no persist effect: %b", helper)
	}
}

// TestReach pins the transitive closure used for commit/recovery path
// classification: everything the commitGood driver calls — across the
// package boundary included — is reachable from it.
func TestReach(t *testing.T) {
	g, _ := loadGlobal(t)
	reach := g.Reach(func(f *analysis.ProgFunc) bool {
		return f.FullName() == "(*fix/twopc.Eng).commitGood"
	})
	for _, want := range []string{
		"(*fix/twopc.Eng).commitGood",
		"(*fix/twopc.Coord).Decide",
		"(*fix/twopc.Part).Prepare",
	} {
		if !reach[want] {
			t.Errorf("%s not reachable from commitGood; reach=%v", want, reach)
		}
	}
	if reach["(*fix/twopc.Eng).commitSwapped"] {
		t.Error("unrelated driver commitSwapped is reachable from commitGood")
	}
}

// TestHasMethods pins the structural role recognition protocheck uses:
// a coordinator is any type with Decide and Forget, regardless of
// pointerness.
func TestHasMethods(t *testing.T) {
	_, prog := loadGlobal(t)
	coord := prog.FuncNamed("(*fix/twopc.Coord).Decide")
	if coord == nil {
		t.Fatal("Coord.Decide not in program")
	}
	recv := coord.Obj.Type().(*types.Signature).Recv().Type()
	if !summary.HasMethods(recv, "Decide", "Forget") {
		t.Error("Coord not recognized as Decide+Forget-shaped")
	}
	if summary.HasMethods(recv, "Decide", "NoSuchMethod") {
		t.Error("HasMethods invented a method")
	}
}
