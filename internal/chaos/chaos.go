// Package chaos is the acked-durability harness: it drives pipelined
// mixed load against a live hyrise-nvd daemon while the fault plane
// (internal/fault) fires, SIGKILLs the daemon mid-load, verifies the
// persistent image offline (Engine.Fsck plus the acked set), restarts
// the daemon on the same address, and checks every client-observed
// outcome against what the restarted database actually contains:
//
//   - a write whose commit was acked must be visible exactly once
//     (an acked ack is a durability promise — the paper's contract);
//   - a write that failed before its commit was issued must be absent
//     (its transaction died with the connection and was rolled back);
//   - a commit whose ack was lost in flight is indeterminate: present
//     or absent is fine, present twice is not (no duplicate apply);
//   - single-slot update chains must show exactly one visible row whose
//     sequence lies between the last acked and last attempted update.
//
// The harness is deliberately mode-opinionated: it runs against ModeNVM
// because the instant-restart property is what makes ten kill/restart
// cycles finish in seconds.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hyrisenv"
	"hyrisenv/client"
	"hyrisenv/internal/backoff"
	"hyrisenv/internal/core"
	"hyrisenv/internal/fault"
	"hyrisenv/internal/shard"
	"hyrisenv/internal/txn"
)

// Table is the chaos workload's table: k is the unique write tag
// (insert workers use ascending non-negative keys, update slots use
// negative keys), v is the payload / update sequence number.
const Table = "chaos"

// Config parameterises a chaos run.
type Config struct {
	Dir string // daemon data directory (offline fsck reopens it between kill and restart)

	Cycles    int           // kill/restart cycles (default 3)
	CycleLoad time.Duration // load duration before each kill (default 300ms)
	Writers   int           // unique-key insert workers (default 4)
	Updaters  int           // single-slot update workers (default 2)
	Readers   int           // count/scan workers, errors tolerated (default 2)

	// NVMHeapSize must match the daemon's heap size so the offline fsck
	// reopen sees the same device (default 256 MiB).
	NVMHeapSize uint64

	// Shards must match the daemon's shard count so the offline fsck
	// reopen sees the same layout (0 or 1 = unpartitioned). With more
	// than one shard the workload's multi-row commits cross shard
	// boundaries, so kills land mid-2PC and recovery must resolve
	// prepared-but-undecided transactions from the coordinator region.
	Shards int

	// ClientFaults, when it injects anything, arms a second fault plane
	// on the client side of every pooled connection — both ends of the
	// wire misbehave. It is quiesced during verification reads.
	ClientFaults fault.Config

	ReadRetries int // client read retries (default 3)

	Logf func(format string, args ...any) // progress logging (nil = silent)
}

// Report is the outcome of a chaos run. The first block counts what the
// workload observed; the second block counts contract violations found
// by verification — all of which must be zero for Clean.
type Report struct {
	Cycles int

	Acked         int // commits acked to the client
	Failed        int // writes that failed before commit was issued
	Indeterminate int // commits whose ack was lost in flight
	UpdatesAcked  int // acked single-slot updates
	OutOfSpace    int // writes refused with ErrOutOfSpace (graceful degradation, not a violation)

	PairsAcked int // acked two-row (cross-shard candidate) commits, counted when Shards > 1

	LostAcked      int // acked writes missing after restart — durability broken
	TornPairs      int // two-row commits where one row survived and the other did not — 2PC atomicity broken
	PhantomFailed  int // failed-before-commit writes that appeared anyway
	Duplicates     int // any tag visible more than once — duplicate apply
	SlotViolations int // update slots outside [lastAcked, lastAttempted] or not exactly one row
	FsckFailures   int // offline consistency failures
	VerifyErrors   int // verification reads that never succeeded

	TotalDowntime time.Duration // sum over cycles of restart-to-first-served
	MaxDowntime   time.Duration

	ClientFaultStats fault.Stats
}

// Clean reports whether the run upheld the acked-durability contract.
// A run that never acked anything proved nothing, so it is not clean.
func (r *Report) Clean() bool {
	return r.Acked > 0 &&
		r.LostAcked == 0 && r.TornPairs == 0 && r.PhantomFailed == 0 &&
		r.Duplicates == 0 && r.SlotViolations == 0 && r.FsckFailures == 0 &&
		r.VerifyErrors == 0
}

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: %d cycles, %d acked, %d failed, %d indeterminate, %d updates acked, %d out-of-space\n",
		r.Cycles, r.Acked, r.Failed, r.Indeterminate, r.UpdatesAcked, r.OutOfSpace)
	if r.PairsAcked > 0 {
		fmt.Fprintf(&b, "pairs: %d acked two-row commits\n", r.PairsAcked)
	}
	fmt.Fprintf(&b, "violations: %d lost-acked, %d torn-pair, %d phantom, %d duplicate, %d slot, %d fsck, %d verify\n",
		r.LostAcked, r.TornPairs, r.PhantomFailed, r.Duplicates, r.SlotViolations, r.FsckFailures, r.VerifyErrors)
	fmt.Fprintf(&b, "downtime: total %v, max %v; client faults: %v",
		r.TotalDowntime.Round(time.Millisecond), r.MaxDowntime.Round(time.Millisecond), &r.ClientFaultStats)
	if r.Clean() {
		b.WriteString("\nCLEAN")
	} else {
		b.WriteString("\nVIOLATIONS FOUND")
	}
	return b.String()
}

// write classification — what the client was told about one tagged write.
const (
	stAcked  = iota // commit returned nil
	stFailed        // error before commit was issued
	stIndet         // commit returned an error
)

// slot tracks one updater's single-row sequence chain.
type slot struct {
	key           int64
	lastAcked     int64
	lastAttempted int64
}

// Run executes the chaos scenario against d. The daemon is started (and
// restarted after every kill) on the same address; cfg.Dir must be the
// directory d serves so the offline fsck inspects the surviving image.
func Run(cfg Config, d Daemon) (*Report, error) {
	if cfg.Cycles <= 0 {
		cfg.Cycles = 3
	}
	if cfg.CycleLoad <= 0 {
		cfg.CycleLoad = 300 * time.Millisecond
	}
	if cfg.Writers <= 0 {
		cfg.Writers = 4
	}
	if cfg.Updaters <= 0 {
		cfg.Updaters = 2
	}
	if cfg.Readers <= 0 {
		cfg.Readers = 2
	}
	if cfg.NVMHeapSize == 0 {
		cfg.NVMHeapSize = 256 << 20
	}
	if cfg.ReadRetries == 0 {
		cfg.ReadRetries = 3
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	rep := &Report{Cycles: cfg.Cycles}

	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		return rep, fmt.Errorf("first start: %w", err)
	}
	defer d.Kill() //nolint:errcheck — best-effort teardown; may already be dead

	clientPlane := fault.New(cfg.ClientFaults)
	clientPlane.Enable()
	c, err := client.Dial(addr, client.Options{
		PoolSize:       cfg.Writers + cfg.Updaters + cfg.Readers,
		RequestTimeout: 10 * time.Second,
		ReadRetries:    cfg.ReadRetries,
		ConnWrapper:    clientPlane.WrapConn,
	})
	if err != nil {
		return rep, fmt.Errorf("dial: %w", err)
	}
	defer c.Close()

	if err := createTable(c); err != nil {
		return rep, err
	}

	// Shared write ledger: every tagged write's last known classification.
	// With Shards > 1 writers commit two keys per transaction and the
	// pairs ledger records which keys must live or die together — the
	// atomicity half of the 2PC contract.
	var mu sync.Mutex
	status := map[int64]int{}
	var pairs [][2]int64
	var nextKey atomic.Int64

	// Seed the update slots (negative keys) before any fault fires.
	slots := make([]*slot, cfg.Updaters)
	for i := range slots {
		slots[i] = &slot{key: int64(-(i + 1))}
		if err := seedSlot(c, slots[i].key); err != nil {
			return rep, fmt.Errorf("seed slot %d: %w", slots[i].key, err)
		}
	}

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		logf("cycle %d/%d: load for %v, then SIGKILL", cycle+1, cfg.Cycles, cfg.CycleLoad)

		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for w := 0; w < cfg.Writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				runWriter(ctx, c, &nextKey, &mu, status, &pairs, cfg.Shards > 1, rep)
			}()
		}
		for _, sl := range slots {
			wg.Add(1)
			go func(sl *slot) {
				defer wg.Done()
				runUpdater(ctx, c, sl, &mu, rep)
			}(sl)
		}
		for r := 0; r < cfg.Readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				runReader(ctx, c)
			}()
		}

		time.Sleep(cfg.CycleLoad)
		if err := d.Kill(); err != nil {
			cancel()
			wg.Wait()
			return rep, fmt.Errorf("cycle %d kill: %w", cycle, err)
		}
		// Give in-flight requests a moment to observe the crash and be
		// classified, then stop the load for the offline window.
		time.Sleep(100 * time.Millisecond)
		cancel()
		wg.Wait()

		// Offline: the surviving image must be structurally consistent
		// before we trust anything it serves.
		if err := offlineFsck(cfg, logf); err != nil {
			rep.FsckFailures++
			logf("cycle %d: FSCK FAILED: %v", cycle+1, err)
		}

		// Restart on the same address and measure restart-to-first-served.
		restartStart := time.Now()
		if _, err := d.Start(addr); err != nil {
			return rep, fmt.Errorf("cycle %d restart: %w", cycle, err)
		}
		if err := awaitServing(c); err != nil {
			return rep, fmt.Errorf("cycle %d: daemon restarted but never served: %w", cycle, err)
		}
		downtime := time.Since(restartStart)
		rep.TotalDowntime += downtime
		if downtime > rep.MaxDowntime {
			rep.MaxDowntime = downtime
		}
		logf("cycle %d: serving again after %v", cycle+1, downtime.Round(time.Millisecond))

		// Verify the full ledger with the client plane quiet; the server
		// plane (if armed) stays live — ReadRetries absorbs it.
		clientPlane.Disable()
		verify(c, &mu, status, pairs, slots, rep, logf)
		clientPlane.Enable()
	}

	clientPlane.Disable()
	rep.ClientFaultStats = clientPlane.Stats()
	return rep, nil
}

func createTable(c *client.Client) error {
	cols := []hyrisenv.Column{
		{Name: "k", Type: hyrisenv.Int64},
		{Name: "v", Type: hyrisenv.Int64},
	}
	pol := backoff.Policy{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond}
	var err error
	for i := 0; i < 20; i++ {
		err = c.CreateTable(Table, cols, "k")
		if err == nil || errors.Is(err, client.ErrTableExists) {
			return nil
		}
		time.Sleep(pol.Delay(i))
	}
	return fmt.Errorf("create table: %w", err)
}

// seedSlot inserts the updater's single row (v=0), retrying until acked
// so every slot chain starts from a known committed state.
func seedSlot(c *client.Client, key int64) error {
	pol := backoff.Policy{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond}
	var err error
	for i := 0; i < 20; i++ {
		var n int
		if n, err = c.Count(Table, keyPred(key)); err == nil && n == 1 {
			return nil // a previous attempt's lost ack actually landed
		}
		var tx *client.Tx
		if tx, err = c.Begin(); err != nil {
			time.Sleep(pol.Delay(i))
			continue
		}
		if _, err = tx.Insert(Table, hyrisenv.Int(key), hyrisenv.Int(0)); err != nil {
			tx.Abort() //nolint:errcheck — already failing
			time.Sleep(pol.Delay(i))
			continue
		}
		if err = tx.Commit(); err == nil {
			return nil
		}
		time.Sleep(pol.Delay(i))
	}
	return err
}

func keyPred(key int64) hyrisenv.Pred {
	return hyrisenv.Pred{Col: "k", Op: hyrisenv.Eq, Val: hyrisenv.Int(key)}
}

// stSkip marks an attempt whose tag never left the client (Begin
// failed): it carries no durability information and is not recorded.
const stSkip = -1

// runWriter inserts rows with globally unique keys until ctx is done,
// classifying every attempt in the shared ledger. When pair is set
// (sharded daemon) every transaction commits two keys, so consecutive
// tags routinely hash to different shards and the commit runs the 2PC
// path; the pair is recorded so verification can check the two rows
// lived or died together. The pacing sleep keeps the ledger at a size
// verification can re-check every cycle and stops the down-window from
// spinning the CPU.
func runWriter(ctx context.Context, c *client.Client, nextKey *atomic.Int64, mu *sync.Mutex, status map[int64]int, pairs *[][2]int64, pair bool, rep *Report) {
	for ctx.Err() == nil {
		keys := []int64{nextKey.Add(1)}
		if pair {
			keys = append(keys, nextKey.Add(1))
		}
		st, oos := classifyInsert(c, keys)
		if st == stSkip {
			time.Sleep(2 * time.Millisecond) // daemon likely down; back off
			continue
		}
		mu.Lock()
		for _, key := range keys {
			status[key] = st
		}
		if pair && st != stFailed {
			*pairs = append(*pairs, [2]int64{keys[0], keys[1]})
		}
		switch st {
		case stAcked:
			rep.Acked += len(keys)
			if pair {
				rep.PairsAcked++
			}
		case stFailed:
			rep.Failed += len(keys)
		default:
			rep.Indeterminate += len(keys)
		}
		if oos {
			rep.OutOfSpace++
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
	}
}

// classifyInsert performs one transaction inserting every tagged key
// and reports what the client was told: acked, definitely-not-committed,
// or indeterminate. All keys share the classification — the commit is
// atomic across them (or must be: verification checks).
func classifyInsert(c *client.Client, keys []int64) (st int, outOfSpace bool) {
	tx, err := c.Begin()
	if err != nil {
		if errors.Is(err, client.ErrOutOfSpace) {
			return stFailed, true
		}
		return stSkip, false
	}
	for _, key := range keys {
		if _, err := tx.Insert(Table, hyrisenv.Int(key), hyrisenv.Int(key)); err != nil {
			tx.Abort() //nolint:errcheck — connection may be dead already
			return stFailed, errors.Is(err, client.ErrOutOfSpace)
		}
	}
	if err := tx.Commit(); err != nil {
		return stIndet, errors.Is(err, client.ErrOutOfSpace)
	}
	return stAcked, false
}

// runUpdater advances one slot's sequence chain: each attempt rewrites
// the slot row with the next sequence number. lastAttempted moves when
// a commit is issued; lastAcked moves when it is acked — the invariant
// verified after every restart is lastAcked <= visible <= lastAttempted
// with exactly one visible row.
func runUpdater(ctx context.Context, c *client.Client, sl *slot, mu *sync.Mutex, rep *Report) {
	for ctx.Err() == nil {
		tx, err := c.Begin()
		if err != nil {
			time.Sleep(2 * time.Millisecond) // daemon likely down; back off
			continue
		}
		rows, err := tx.Select(Table, keyPred(sl.key))
		if err != nil || len(rows) != 1 {
			tx.Abort() //nolint:errcheck — retry with a fresh snapshot
			continue
		}
		mu.Lock()
		seq := sl.lastAttempted + 1
		mu.Unlock()
		if _, err := tx.Update(Table, rows[0], hyrisenv.Int(sl.key), hyrisenv.Int(seq)); err != nil {
			tx.Abort() //nolint:errcheck
			continue
		}
		mu.Lock()
		sl.lastAttempted = seq // commit is about to be issued
		mu.Unlock()
		if err := tx.Commit(); err == nil {
			mu.Lock()
			sl.lastAcked = seq
			rep.UpdatesAcked++
			mu.Unlock()
		}
	}
}

// runReader keeps read pressure on the pipeline; its errors are fault
// noise by design — the harness only needs it to never deadlock.
func runReader(ctx context.Context, c *client.Client) {
	for ctx.Err() == nil {
		c.Count(Table)             //nolint:errcheck
		c.Count(Table, keyPred(1)) //nolint:errcheck
		time.Sleep(time.Millisecond)
	}
}

// offlineFsck opens the crashed image directly (the daemon is dead, so
// the harness briefly owns the directory) and runs the full structural
// consistency suite, then closes cleanly. Recovery itself — rolling
// back in-flight transactions — happens inside this Open exactly as it
// will in the daemon's restart.
func offlineFsck(cfg Config, logf func(string, ...any)) error {
	eng, err := shard.Open(shard.Config{
		Config: core.Config{
			Mode:        txn.ModeNVM,
			Dir:         cfg.Dir,
			NVMHeapSize: cfg.NVMHeapSize,
		},
		Shards: cfg.Shards,
	})
	if err != nil {
		return fmt.Errorf("offline open: %w", err)
	}
	defer eng.Close() //nolint:errcheck — read-only visit
	rs := eng.RecoveryStats()
	rolled := 0
	for _, ps := range rs.PerShard {
		rolled += ps.NVM.RolledBack
	}
	logf("offline: opened in %v, rolled back %d in-flight, %d 2pc decisions",
		rs.Total.Round(time.Microsecond), rolled, rs.Decisions2PC)
	if err := eng.Fsck(); err != nil {
		return fmt.Errorf("fsck: %w", err)
	}
	return nil
}

// awaitServing blocks until the daemon answers a ping, bounded by a
// deadline far above any sane NVM restart.
func awaitServing(c *client.Client) error {
	pol := backoff.Policy{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond}
	deadline := time.Now().Add(30 * time.Second)
	var err error
	for i := 0; time.Now().Before(deadline); i++ {
		if err = c.Ping(); err == nil {
			return nil
		}
		time.Sleep(pol.Delay(i))
	}
	return err
}

// verify checks the whole ledger against the restarted database:
// acked ⇒ exactly once, failed ⇒ absent, indeterminate ⇒ at most once,
// pairs ⇒ both rows present or both absent (2PC atomicity), slots ⇒
// one row inside the acked..attempted window. Each finding is counted
// once and the entry collapsed to the observed truth so later cycles
// do not re-count it.
func verify(c *client.Client, mu *sync.Mutex, status map[int64]int, pairs [][2]int64, slots []*slot, rep *Report, logf func(string, ...any)) {
	mu.Lock()
	keys := make([]int64, 0, len(status))
	for k := range status {
		keys = append(keys, k)
	}
	mu.Unlock()

	present := make(map[int64]bool, len(keys))
	for _, key := range keys {
		n, err := countRetry(c, keyPred(key))
		if err != nil {
			rep.VerifyErrors++
			logf("verify key %d: %v", key, err)
			continue
		}
		present[key] = n >= 1
		mu.Lock()
		st := status[key]
		switch {
		case n > 1:
			rep.Duplicates++
			logf("VIOLATION: key %d visible %d times", key, n)
			delete(status, key)
		case st == stAcked && n == 0:
			rep.LostAcked++
			logf("VIOLATION: acked key %d lost", key)
			delete(status, key)
		case st == stFailed && n == 1:
			rep.PhantomFailed++
			logf("VIOLATION: failed key %d appeared", key)
			delete(status, key)
		case st == stFailed:
			// Verified absent once; its transaction is gone, so it can
			// never appear later. Drop it to keep re-verification of the
			// acked set (the part that matters) from drowning.
			delete(status, key)
		case st == stIndet:
			// Resolved now: present behaves like acked from here on,
			// absent like failed.
			if n == 1 {
				status[key] = stAcked
			} else {
				status[key] = stFailed
			}
		}
		mu.Unlock()
	}

	// Pair atomicity: both halves of one commit must agree. Pairs whose
	// keys left the ledger in an earlier cycle (verified absent) carry a
	// presence entry only while tracked, so they are skipped here.
	for _, pr := range pairs {
		a, aok := present[pr[0]]
		b, bok := present[pr[1]]
		if !aok || !bok {
			continue
		}
		if a != b {
			rep.TornPairs++
			logf("VIOLATION: pair (%d, %d) torn: one row committed without the other", pr[0], pr[1])
		}
	}

	for _, sl := range slots {
		rows, err := selectRetry(c, keyPred(sl.key))
		if err != nil {
			rep.VerifyErrors++
			logf("verify slot %d: %v", sl.key, err)
			continue
		}
		if len(rows) != 1 {
			rep.SlotViolations++
			logf("VIOLATION: slot %d has %d visible rows, want 1", sl.key, len(rows))
			for _, r := range rows {
				vals, err := c.Row(Table, r)
				logf("  slot %d row %d: vals=%v err=%v", sl.key, r, vals, err)
			}
			continue
		}
		vals, err := c.Row(Table, rows[0])
		if err != nil {
			rep.VerifyErrors++
			logf("verify slot %d row: %v", sl.key, err)
			continue
		}
		seq := vals[1].I
		mu.Lock()
		lo, hi := sl.lastAcked, sl.lastAttempted
		if seq < lo || seq > hi {
			rep.SlotViolations++
			logf("VIOLATION: slot %d at seq %d, outside acked window [%d, %d]", sl.key, seq, lo, hi)
		} else {
			// The surviving sequence is the committed truth: chains
			// resume from it after the restart.
			sl.lastAcked, sl.lastAttempted = seq, seq
		}
		mu.Unlock()
	}
}

func countRetry(c *client.Client, p hyrisenv.Pred) (int, error) {
	pol := backoff.Policy{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond}
	var n int
	var err error
	for i := 0; i < 10; i++ {
		if n, err = c.Count(Table, p); err == nil {
			return n, nil
		}
		time.Sleep(pol.Delay(i))
	}
	return 0, err
}

func selectRetry(c *client.Client, p hyrisenv.Pred) ([]uint64, error) {
	pol := backoff.Policy{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond}
	var rows []uint64
	var err error
	for i := 0; i < 10; i++ {
		if rows, err = c.Select(Table, p); err == nil {
			return rows, nil
		}
		time.Sleep(pol.Delay(i))
	}
	return nil, err
}
