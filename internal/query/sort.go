package query

import (
	"bytes"
	"sort"

	"hyrisenv/internal/storage"
)

// OrderBy sorts row IDs by the given column, exploiting the
// order-preserving key encoding: rows compare by their encoded
// dictionary keys, so no value decoding happens during the sort.
// desc reverses the order. The input slice is sorted in place and
// returned.
func OrderBy(tbl *storage.Table, rows []uint64, col int, desc bool) []uint64 {
	v := tbl.View()
	mr := v.MainRows()
	keyOf := func(row uint64) []byte {
		if row < mr {
			mc := v.MainColumnAt(col)
			return mc.DictKey(mc.ValueID(row))
		}
		dc := v.DeltaColumnAt(col)
		return dc.DictKey(dc.ValueID(row - mr))
	}
	// Cache keys: DictKey may read NVM blobs; fetch each row's key once.
	keys := make([][]byte, len(rows))
	for i, r := range rows {
		keys[i] = keyOf(r)
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		c := bytes.Compare(keys[idx[a]], keys[idx[b]])
		if desc {
			return c > 0
		}
		return c < 0
	})
	out := make([]uint64, len(rows))
	for i, j := range idx {
		out[i] = rows[j]
	}
	copy(rows, out)
	return rows
}

// Limit returns at most n rows starting at offset.
func Limit(rows []uint64, offset, n int) []uint64 {
	if offset >= len(rows) {
		return nil
	}
	rows = rows[offset:]
	if n < len(rows) {
		rows = rows[:n]
	}
	return rows
}
