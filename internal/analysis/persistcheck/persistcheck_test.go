package persistcheck_test

import (
	"testing"

	"hyrisenv/internal/analysis"
	"hyrisenv/internal/analysis/persistcheck"
)

func TestPersistCheck(t *testing.T) {
	analysis.Fixture(t, analysis.FixtureDir(),
		[]*analysis.Analyzer{persistcheck.Analyzer}, "./persist")
}
