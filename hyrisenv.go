// Package hyrisenv is a Go reproduction of Hyrise-NV, the NVM-resident
// in-memory database storage engine of Schwalb et al., "Leveraging
// non-volatile memory for instant restarts of in-memory database
// systems" (ICDE 2016).
//
// The engine is a dictionary-compressed main/delta column store with
// insert-only MVCC transactions and three durability modes:
//
//   - Volatile — no durability; the DRAM reference point.
//   - LogBased — write-ahead logging + binary checkpoints on a modelled
//     disk; restart replays the log and rebuilds indexes (time grows
//     with data size — the paper measures ~53 s for 92.2 GB).
//   - NVM — the paper's contribution: all table, MVCC and index
//     structures live on (simulated) byte-addressable non-volatile
//     memory and are updated transactionally consistently, so restart
//     is near-instant and independent of data size.
//
// A database may be hash-partitioned into shards (Config.Shards): each
// shard owns its own NVM heap, MVCC store and commit path, restart
// recovery fans out across shards in parallel, and transactions whose
// writes span shards commit with two-phase commit through a persistent
// coordinator. Single-shard transactions keep the unpartitioned fast
// path.
//
// Quickstart:
//
//	db, err := hyrisenv.Open(hyrisenv.Config{Mode: hyrisenv.NVM, Dir: "data"})
//	...
//	tbl, err := db.CreateTable("orders",
//		[]hyrisenv.Column{
//			{Name: "id", Type: hyrisenv.Int64},
//			{Name: "customer", Type: hyrisenv.String},
//		}, "id")
//	tx := db.Begin()
//	tx.Insert(tbl, hyrisenv.Int(1), hyrisenv.Str("alice"))
//	err = tx.Commit()
package hyrisenv

import (
	"fmt"
	"time"

	"hyrisenv/internal/core"
	"hyrisenv/internal/disk"
	"hyrisenv/internal/nvm"
	"hyrisenv/internal/shard"
	"hyrisenv/internal/storage"
	"hyrisenv/internal/txn"
)

// Mode selects the durability architecture.
type Mode int

// Durability modes.
const (
	// Volatile keeps everything in DRAM with no durability.
	Volatile Mode = iota
	// LogBased uses write-ahead logging and binary checkpoints — the
	// conventional recovery architecture.
	LogBased
	// NVM keeps all data structures on simulated non-volatile memory —
	// the Hyrise-NV architecture with instant restarts.
	NVM
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Volatile:
		return "volatile"
	case LogBased:
		return "log-based"
	case NVM:
		return "nvm"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

func (m Mode) txnMode() txn.Mode {
	switch m {
	case LogBased:
		return txn.ModeLog
	case NVM:
		return txn.ModeNVM
	default:
		return txn.ModeNone
	}
}

// Type is a column type.
type Type = storage.ColType

// Column types.
const (
	Int64   = storage.TypeInt64
	Float64 = storage.TypeFloat64
	String  = storage.TypeString
)

// Value is a cell value; construct with Int, Float and Str.
type Value = storage.Value

// Int returns an int64 value.
func Int(v int64) Value { return storage.Int(v) }

// Float returns a float64 value.
func Float(v float64) Value { return storage.Float(v) }

// Str returns a string value.
func Str(v string) Value { return storage.Str(v) }

// Column defines one table column.
type Column struct {
	Name string
	Type Type
}

// DiskModel shapes the simulated log/checkpoint device (LogBased mode).
type DiskModel = disk.Model

// NVMLatency configures the emulated NVM latencies (NVM mode).
type NVMLatency = nvm.LatencyModel

// Config configures Open. It is the single configuration surface of the
// module: the daemon's flags (cmd/hyrise-nv serve) and the network
// server map onto it one-to-one — see the README's configuration table.
type Config struct {
	// Mode selects the durability architecture.
	Mode Mode
	// Dir is the data directory (required except in Volatile mode).
	Dir string
	// Shards hash-partitions the database N ways (default 1,
	// unpartitioned). Each shard owns its own NVM heap, MVCC store and
	// commit path; restart recovery runs across shards in parallel, and
	// cross-shard transactions commit with two-phase commit. The shard
	// count is fixed at creation and recorded in the data directory.
	Shards int
	// RecoveryWorkers bounds how many shards recover concurrently at
	// Open (default: min(Shards, GOMAXPROCS)).
	RecoveryWorkers int
	// NVMHeapSize sizes the simulated NVM device on first creation —
	// per shard, when partitioned (NVM mode; default 1 GiB).
	NVMHeapSize uint64
	// NVMHeapMaxSize, when non-zero, lets each heap grow online past
	// NVMHeapSize up to this bound, doubling geometrically per remap
	// (NVM mode). Zero keeps heaps fixed-size.
	NVMHeapMaxSize uint64
	// NVMLatency injects emulated NVM write/fence/read latencies.
	NVMLatency NVMLatency
	// DiskModel shapes the log device; disk.SSD2016 approximates the
	// paper's hardware era. Zero = raw file speed.
	DiskModel DiskModel
	// MergeThresholdRows, when non-zero, lets Maintain auto-merge tables
	// whose delta has grown past this many rows.
	MergeThresholdRows uint64
	// CheckpointLogBytes, when non-zero, lets Maintain rotate the log
	// once the segment exceeds this size (LogBased mode).
	CheckpointLogBytes uint64
	// HashDictIndex uses an O(1) persistent hash map instead of the
	// ordered skip list for NVM delta dictionary indexes (NVM mode).
	HashDictIndex bool
	// CompressCheckpoints flate-compresses binary checkpoints (LogBased
	// mode) — smaller checkpoint I/O at some CPU cost.
	CompressCheckpoints bool
	// Parallelism sets the degree of morsel parallelism for query
	// execution (scans, counts, GROUP BY, join build): 0 = one worker
	// per schedulable core (GOMAXPROCS), 1 = serial execution (the
	// historical behavior). Every read path — embedded Tx methods and
	// the network server's handlers — shares this executor.
	Parallelism int
	// GroupCommit coalesces concurrent commits into persist groups that
	// share one set of commit fences (NVM mode) — the NVM analog of WAL
	// group commit. Under concurrent write load this amortizes the
	// dominant commit-path cost; a lone committer pays one extra
	// leader/follower handoff but still commits immediately.
	GroupCommit bool
	// GroupCommitMaxBatch bounds transactions per persist group
	// (default 64).
	GroupCommitMaxBatch int
	// GroupCommitMaxDelay is how long a group leader waits for more
	// commits before flushing (default 0: batches form naturally from
	// commits arriving while the previous group flushes).
	GroupCommitMaxDelay time.Duration
}

func (cfg Config) shardConfig() shard.Config {
	return shard.Config{
		Config: core.Config{
			Mode:                cfg.Mode.txnMode(),
			Dir:                 cfg.Dir,
			NVMHeapSize:         cfg.NVMHeapSize,
			NVMHeapMaxSize:      cfg.NVMHeapMaxSize,
			NVMLatency:          cfg.NVMLatency,
			DiskModel:           cfg.DiskModel,
			MergeThresholdRows:  cfg.MergeThresholdRows,
			CheckpointLogBytes:  cfg.CheckpointLogBytes,
			HashDictIndex:       cfg.HashDictIndex,
			CompressCheckpoints: cfg.CompressCheckpoints,
			Parallelism:         cfg.Parallelism,
			GroupCommit:         cfg.GroupCommit,
			GroupCommitMaxBatch: cfg.GroupCommitMaxBatch,
			GroupCommitMaxDelay: cfg.GroupCommitMaxDelay,
		},
		Shards:          cfg.Shards,
		RecoveryWorkers: cfg.RecoveryWorkers,
	}
}

// RecoveryStats describes what the last Open had to do to reach a
// queryable state — the quantity the paper's headline experiment
// compares across architectures.
type RecoveryStats struct {
	Mode           Mode
	Total          time.Duration
	Shards         int
	TablesOpened   int
	CheckpointLoad time.Duration // LogBased: reading the binary checkpoint
	LogReplay      time.Duration // LogBased: redoing committed transactions
	IndexRebuild   time.Duration // LogBased: reconstructing index structures
	ReplayRecords  int
	// NVM mode: the in-flight transaction fixup (the only data-dependent
	// restart work).
	InFlightRolledBack int
	EntriesUndone      int
	// Decisions2PC counts cross-shard commit decisions that survived in
	// the coordinator and resolved in-doubt transactions at restart.
	Decisions2PC int
}

// DB is an open database.
type DB struct {
	eng  *shard.Engine
	mode Mode
}

// Table is a handle to a table. When the database is partitioned the
// handle spans every shard's part and row IDs are global (they encode
// the owning shard).
type Table struct {
	t *shard.Table
}

// Name returns the table name.
func (t *Table) Name() string { return t.t.Name }

// Rows returns the total physical row count (including dead versions).
func (t *Table) Rows() uint64 { return t.t.Rows() }

// MainRows returns the number of rows in the read-optimized main
// partition(s).
func (t *Table) MainRows() uint64 { return t.t.MainRows() }

// DeltaRows returns the number of rows in the write-optimized delta(s).
func (t *Table) DeltaRows() uint64 { return t.t.DeltaRows() }

// Value reads column col of physical row ID row (no visibility check —
// use Tx query methods for transactional reads).
func (t *Table) Value(col int, row uint64) Value { return t.t.Value(col, row) }

// Internal exposes the storage-layer table — shard 0's part when
// partitioned — to the sibling benchmark and example code inside this
// module.
func (t *Table) Internal() *storage.Table { return t.t.Part(0) }

// Sharded exposes the shard-spanning table handle.
func (t *Table) Sharded() *shard.Table { return t.t }

// Open creates or re-opens a database.
func Open(cfg Config) (*DB, error) {
	eng, err := shard.Open(cfg.shardConfig())
	if err != nil {
		return nil, err
	}
	return &DB{eng: eng, mode: cfg.Mode}, nil
}

// Close releases resources. Committed data is already durable in every
// mode; Close never writes.
func (db *DB) Close() error { return db.eng.Close() }

// Mode returns the durability mode.
func (db *DB) Mode() Mode { return db.mode }

// Shards returns the partition count (1 = unpartitioned).
func (db *DB) Shards() int { return db.eng.Shards() }

// CreateTable creates a table. indexed names columns to maintain
// secondary indexes on.
func (db *DB) CreateTable(name string, cols []Column, indexed ...string) (*Table, error) {
	defs := make([]storage.ColumnDef, len(cols))
	for i, c := range cols {
		defs[i] = storage.ColumnDef{Name: c.Name, Type: c.Type}
	}
	sch, err := storage.NewSchema(defs...)
	if err != nil {
		return nil, err
	}
	t, err := db.eng.CreateTable(name, sch, indexed...)
	if err != nil {
		return nil, err
	}
	return &Table{t: t}, nil
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	t, err := db.eng.Table(name)
	if err != nil {
		return nil, err
	}
	return &Table{t: t}, nil
}

// Tables lists all tables.
func (db *DB) Tables() []*Table {
	ts := db.eng.Tables()
	out := make([]*Table, len(ts))
	for i, t := range ts {
		out[i] = &Table{t: t}
	}
	return out
}

// Merge compacts the named table's delta partition into a new main
// partition (dropping dead row versions) on every shard. The table must
// be quiescent.
func (db *DB) Merge(name string) error {
	_, err := db.eng.Merge(name)
	return err
}

// Checkpoint writes a binary checkpoint and rotates the log (LogBased
// mode; a no-op under NVM where data is always durable).
func (db *DB) Checkpoint() error { return db.eng.Checkpoint() }

// RecoveryStats reports the cost of the last Open. Per-shard restart
// work ran in parallel; Total is wall clock for the whole fleet.
func (db *DB) RecoveryStats() RecoveryStats {
	rs := db.eng.RecoveryStats()
	out := RecoveryStats{
		Mode:         db.mode,
		Total:        rs.Total,
		Shards:       db.eng.Shards(),
		Decisions2PC: rs.Decisions2PC,
	}
	for _, s := range rs.PerShard {
		out.TablesOpened += s.TablesOpened
		out.CheckpointLoad += s.CheckpointLoad
		out.LogReplay += s.LogReplay
		out.IndexRebuild += s.IndexRebuild
		out.ReplayRecords += s.ReplayRecords
		out.InFlightRolledBack += s.NVM.RolledBack
		out.EntriesUndone += s.NVM.EntriesUndone
	}
	return out
}

// NVMStats reports persistence-primitive counters of the simulated NVM
// device — summed across shards when partitioned (NVM mode; zero value
// otherwise).
type NVMStats struct {
	Flushes   uint64
	Fences    uint64
	BytesUsed uint64
	Grows     uint64
}

// NVMStats returns the NVM device counters.
func (db *DB) NVMStats() NVMStats {
	s := db.eng.NVMStats()
	return NVMStats{Flushes: s.Flushes, Fences: s.Fences, BytesUsed: s.BytesUsed, Grows: s.Grows}
}

// ResetNVMStats zeroes the NVM counters (for measurement windows).
func (db *DB) ResetNVMStats() { db.eng.ResetNVMStats() }

// Maintain runs due background maintenance synchronously: auto-merges
// (Config.MergeThresholdRows) and log-rotation checkpoints
// (Config.CheckpointLogBytes).
func (db *DB) Maintain() error { return db.eng.Maintain() }

// Check validates structural invariants of every table on every shard
// (vector alignment, dictionary order, MVCC stamp sanity, index
// agreement) and returns an error describing the first violation found.
func (db *DB) Check() error { return db.eng.Check() }

// Scavenge reclaims unreachable NVM blocks (superseded merge partitions,
// allocations orphaned by crashes) on every shard. NVM mode only; the
// caller must ensure no transactions are active.
func (db *DB) Scavenge() (reclaimed int, err error) { return db.eng.Scavenge() }

// Engine exposes the internal core engine — shard 0 when partitioned —
// to the sibling benchmark code.
func (db *DB) Engine() *core.Engine { return db.eng.Shard(0) }

// Sharded exposes the shard-routing engine to sibling code that needs
// per-shard access or coordinator statistics.
func (db *DB) Sharded() *shard.Engine { return db.eng }

// SyncToDisk forces the simulated NVM mappings (every shard heap and
// the 2PC coordinator heap) down to their backing files via msync. The
// simulation is durable across process restarts without it (the page
// cache persists); call this for durability against OS crashes too.
// No-op outside NVM mode.
func (db *DB) SyncToDisk() error {
	for _, h := range db.eng.Heaps() {
		if err := h.Sync(); err != nil {
			return err
		}
	}
	if c := db.eng.Coordinator(); c != nil {
		return c.Heap().Sync()
	}
	return nil
}
