package storage

import (
	"encoding/binary"
	"fmt"
)

// ColumnDef describes one column of a table.
type ColumnDef struct {
	Name string
	Type ColType
}

// Schema is the ordered column list of a table.
type Schema struct {
	Cols []ColumnDef
}

// NewSchema builds a schema, validating names and types.
func NewSchema(cols ...ColumnDef) (Schema, error) {
	if len(cols) == 0 {
		return Schema{}, fmt.Errorf("storage: schema needs at least one column")
	}
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		if c.Name == "" {
			return Schema{}, fmt.Errorf("storage: empty column name")
		}
		if seen[c.Name] {
			return Schema{}, fmt.Errorf("storage: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
		switch c.Type {
		case TypeInt64, TypeFloat64, TypeString:
		default:
			return Schema{}, fmt.Errorf("storage: column %q has invalid type", c.Name)
		}
	}
	return Schema{Cols: cols}, nil
}

// ColIndex returns the position of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// NumCols returns the column count.
func (s Schema) NumCols() int { return len(s.Cols) }

// Validate checks that vals conforms to the schema.
func (s Schema) Validate(vals []Value) error {
	if len(vals) != len(s.Cols) {
		return fmt.Errorf("storage: row has %d values, schema has %d columns", len(vals), len(s.Cols))
	}
	for i, v := range vals {
		if v.T != s.Cols[i].Type {
			return fmt.Errorf("storage: column %q expects %s, got %s",
				s.Cols[i].Name, s.Cols[i].Type, v.T)
		}
	}
	return nil
}

// Marshal serializes the schema (used for the NVM catalog and for
// checkpoints): count u32 | per col: type u8, nameLen u16, name.
func (s Schema) Marshal() []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Cols)))
	for _, c := range s.Cols {
		b = append(b, byte(c.Type))
		b = binary.LittleEndian.AppendUint16(b, uint16(len(c.Name)))
		b = append(b, c.Name...)
	}
	return b
}

// UnmarshalSchema reverses Marshal.
func UnmarshalSchema(b []byte) (Schema, error) {
	if len(b) < 4 {
		return Schema{}, fmt.Errorf("storage: truncated schema")
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	cols := make([]ColumnDef, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < 3 {
			return Schema{}, fmt.Errorf("storage: truncated schema column %d", i)
		}
		t := ColType(b[0])
		nl := binary.LittleEndian.Uint16(b[1:])
		b = b[3:]
		if len(b) < int(nl) {
			return Schema{}, fmt.Errorf("storage: truncated schema name %d", i)
		}
		cols = append(cols, ColumnDef{Name: string(b[:nl]), Type: t})
		b = b[nl:]
	}
	return NewSchema(cols...)
}
