package sharecheck_test

import (
	"testing"

	"hyrisenv/internal/analysis"
	"hyrisenv/internal/analysis/sharecheck"
)

func TestShareCheck(t *testing.T) {
	analysis.Fixture(t, analysis.FixtureDir(),
		[]*analysis.Analyzer{sharecheck.Analyzer}, "./share")
}
