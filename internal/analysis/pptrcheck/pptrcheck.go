// Package pptrcheck enforces that NVM offsets (nvm.PPtr) are the only
// currency used to reference NVM-resident data. Virtual addresses are
// not stable: the heap file may be mapped at a different base address on
// every Open, so anything derived from the mapping is invalidated by a
// remap.
//
// The analyzer reports:
//
//   - conversions of nvm.PPtr to uintptr or unsafe.Pointer — the
//     offset must never be laundered into an address;
//   - package-level variables whose type contains nvm.PPtr — durable
//     offsets cached in volatile globals dangle across restarts and, in
//     tests that reopen heaps, across remaps;
//   - a []byte obtained from Heap.Bytes that is still used after a
//     Close or Open call in the same function — the slice aliases the
//     old mapping.
//
// Package nvm itself is exempt: it is the trusted base layer and has to
// touch the mapping directly.
package pptrcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"hyrisenv/internal/analysis"
	"hyrisenv/internal/analysis/cfg"
	"hyrisenv/internal/analysis/dataflow"
	"hyrisenv/internal/analysis/ptr"
)

// Analyzer is the pptrcheck analysis.
var Analyzer = &analysis.Analyzer{
	Name: "pptrcheck",
	Doc:  "nvm.PPtr offsets must not be converted to addresses, cached in globals, or aliased across heap remaps",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "nvm" {
		return nil // the heap implementation is the trusted base layer
	}
	for _, file := range pass.Files {
		checkGlobals(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkConversion(pass, call)
			}
			if fn, ok := n.(*ast.FuncDecl); ok && fn.Body != nil {
				checkRemapAliasing(pass, fn)
			}
			return true
		})
	}
	return nil
}

// isPPtr reports whether t is (or points to) nvm.PPtr.
func isPPtr(t types.Type) bool {
	return t != nil && analysis.NamedFrom(t, "nvm", "PPtr")
}

// containsPPtr reports whether t embeds nvm.PPtr anywhere in its
// structure (fields, elements, map keys/values).
func containsPPtr(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if isPPtr(t) {
		return true
	}
	switch t := t.Underlying().(type) {
	case *types.Pointer:
		return containsPPtr(t.Elem(), seen)
	case *types.Slice:
		return containsPPtr(t.Elem(), seen)
	case *types.Array:
		return containsPPtr(t.Elem(), seen)
	case *types.Map:
		return containsPPtr(t.Key(), seen) || containsPPtr(t.Elem(), seen)
	case *types.Chan:
		return containsPPtr(t.Elem(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsPPtr(t.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// checkConversion flags PPtr → uintptr / unsafe.Pointer conversions.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst := tv.Type
	src := pass.Info.TypeOf(call.Args[0])
	if !isPPtr(src) {
		return
	}
	basic, isBasic := dst.Underlying().(*types.Basic)
	switch {
	case isBasic && basic.Kind() == types.Uintptr:
		pass.Reportf(call.Pos(), "nvm.PPtr converted to uintptr; offsets are not addresses — index through Heap.Bytes instead")
	case isBasic && basic.Kind() == types.UnsafePointer:
		pass.Reportf(call.Pos(), "nvm.PPtr converted to unsafe.Pointer; offsets are not addresses — index through Heap.Bytes instead")
	}
}

// checkGlobals flags package-level variables whose type contains
// nvm.PPtr.
func checkGlobals(pass *analysis.Pass, file *ast.File) {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				obj := pass.Info.Defs[name]
				if obj == nil || name.Name == "_" {
					continue
				}
				if containsPPtr(obj.Type(), map[types.Type]bool{}) {
					pass.Reportf(name.Pos(),
						"package-level var %s holds nvm.PPtr; durable offsets must not be cached in volatile globals — resolve them from a root at startup",
						name.Name)
				}
			}
		}
	}
}

// remapFact is the flow fact of the remap-aliasing analysis: live is
// the set of Heap.Bytes-derived slice variables whose mapping is still
// valid, stale the set invalidated by a remap on some path, with the
// position of the remap that killed each. nil = unvisited bottom; both
// sets are may-sets (join = union), so a slice that survives a remap on
// one branch only is still reported at a later use.
type remapFact struct {
	live  []types.Object // sorted by Pos
	stale map[types.Object]token.Pos
}

func sortedObjs(in []types.Object) []types.Object {
	sort.Slice(in, func(i, j int) bool { return in[i].Pos() < in[j].Pos() })
	return in
}

var remapLattice = dataflow.Lattice[*remapFact]{
	Bottom: func() *remapFact { return nil },
	Join: func(a, b *remapFact) *remapFact {
		if a == nil {
			return b
		}
		if b == nil {
			return a
		}
		liveSet := map[types.Object]bool{}
		for _, o := range a.live {
			liveSet[o] = true
		}
		var live []types.Object
		live = append(live, a.live...)
		for _, o := range b.live {
			if !liveSet[o] {
				live = append(live, o)
			}
		}
		stale := map[types.Object]token.Pos{}
		for o, p := range a.stale {
			stale[o] = p
		}
		for o, p := range b.stale {
			if prev, ok := stale[o]; !ok || p < prev {
				stale[o] = p
			}
		}
		return &remapFact{live: sortedObjs(live), stale: stale}
	},
	Equal: func(a, b *remapFact) bool {
		if (a == nil) != (b == nil) {
			return false
		}
		if a == nil {
			return true
		}
		if len(a.live) != len(b.live) || len(a.stale) != len(b.stale) {
			return false
		}
		for i := range a.live {
			if a.live[i] != b.live[i] {
				return false
			}
		}
		for o, p := range a.stale {
			if q, ok := b.stale[o]; !ok || p != q {
				return false
			}
		}
		return true
	},
}

// isRemapCall reports whether call invalidates the current NVM mapping:
// Heap.Close, or nvm.Open / nvm.Create establishing a new one.
func isRemapCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	name, pkgName := analysis.CalleeName(pass.Info, call)
	if name != "Close" && name != "Open" && name != "Create" {
		return false
	}
	recv := analysis.ReceiverType(pass.Info, call)
	onHeap := recv != nil && analysis.NamedFrom(recv, "nvm", "Heap")
	return onHeap || (pkgName == "nvm" && (name == "Open" || name == "Create"))
}

// checkRemapAliasing flags uses of a Heap.Bytes-derived slice after a
// Close/Open call on a heap, flow-sensitively: the slice is tracked
// through the function's control-flow graph, a remap moves every live
// slice into the stale set, and re-deriving the slice from the reopened
// heap revives it. A use reached by a stale fact on any path — e.g. the
// second iteration of a loop that remaps at its end — is reported.
func checkRemapAliasing(pass *analysis.Pass, fn *ast.FuncDecl) {
	g := cfg.New(fn.Body)
	pg := ptr.Of(pass)

	transfer := func(n ast.Node, in *remapFact) *remapFact {
		f := in
		if f == nil {
			f = &remapFact{}
		}
		// Remaps first ordering does not matter at node granularity;
		// process the node's events in source order.
		var events []func(*remapFact) *remapFact
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			switch m := m.(type) {
			case *ast.AssignStmt:
				if len(m.Lhs) != len(m.Rhs) {
					return true
				}
				for i, rhs := range m.Rhs {
					if !seedsAlias(pass, pg, rhs) {
						continue
					}
					id, ok := m.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.Info.Defs[id]
					if obj == nil {
						obj = pass.Info.Uses[id]
					}
					if obj == nil {
						continue
					}
					o := obj
					fresh := isBytesCall(pass, rhs)
					root := rootAliasObj(pass, rhs)
					events = append(events, func(f *remapFact) *remapFact {
						out := &remapFact{stale: map[types.Object]token.Pos{}}
						for k, v := range f.stale {
							if k != o {
								out.stale[k] = v
							}
						}
						if !fresh && root != nil {
							if pos, ok := f.stale[root]; ok {
								// Copying a stale alias yields a stale
								// alias; only a fresh Bytes call revives.
								out.stale[o] = pos
								live := f.live[:0:0]
								for _, l := range f.live {
									if l != o {
										live = append(live, l)
									}
								}
								out.live = live
								return out
							}
						}
						has := false
						for _, l := range f.live {
							if l == o {
								has = true
							}
						}
						out.live = f.live
						if !has {
							out.live = sortedObjs(append(append([]types.Object{}, f.live...), o))
						}
						return out
					})
				}
			case *ast.CallExpr:
				if isRemapCall(pass, m) {
					pos := m.Pos()
					events = append(events, func(f *remapFact) *remapFact {
						out := &remapFact{stale: map[types.Object]token.Pos{}}
						for k, v := range f.stale {
							out.stale[k] = v
						}
						for _, l := range f.live {
							if _, ok := out.stale[l]; !ok {
								out.stale[l] = pos
							}
						}
						return out
					})
				}
			}
			return true
		})
		for _, ev := range events {
			f = ev(f)
		}
		return f
	}
	res := dataflow.Forward(g, remapLattice, &remapFact{}, transfer)

	// Reporting: an identifier whose object is stale at its node is an
	// alias of a dead mapping. One report per object per function. The
	// left-hand side of a re-deriving assignment is the revival itself,
	// not a use of the dead alias.
	reported := map[types.Object]bool{}
	res.NodeFacts(g, func(n ast.Node, before *remapFact) {
		if before == nil || len(before.stale) == 0 {
			return
		}
		reviving := map[*ast.Ident]bool{}
		ast.Inspect(n, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				if !seedsAlias(pass, pg, rhs) {
					continue
				}
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					reviving[id] = true
				}
			}
			return true
		})
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			id, ok := m.(*ast.Ident)
			if !ok || reviving[id] {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil || reported[obj] {
				return true
			}
			c, ok := before.stale[obj]
			if !ok {
				return true
			}
			reported[obj] = true
			pass.Reportf(id.Pos(),
				"%s aliases the NVM mapping from Heap.Bytes but is used after the remap at %s; re-derive it from the reopened heap",
				id.Name, pass.Fset.Position(c))
			return true
		})
	})
}

func isBytesCall(pass *analysis.Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.SliceExpr:
		return isBytesCall(pass, e.X)
	case *ast.CallExpr:
		name, _ := analysis.CalleeName(pass.Info, e)
		recv := analysis.ReceiverType(pass.Info, e)
		return name == "Bytes" && recv != nil && analysis.NamedFrom(recv, "nvm", "Heap")
	}
	return false
}

// seedsAlias reports whether rhs produces a slice aliasing the NVM
// mapping: a direct Heap.Bytes call (or reslice of one), or — through
// the points-to graph — any slice-typed expression whose points-to set
// contains an NVM block, which catches derived aliases like c := b.
func seedsAlias(pass *analysis.Pass, pg *ptr.Graph, rhs ast.Expr) bool {
	if isBytesCall(pass, rhs) {
		return true
	}
	t := pass.Info.TypeOf(rhs)
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Slice); !ok {
		return false
	}
	return pg.NVMSlice(rhs)
}

// rootAliasObj returns the variable a derived slice expression copies
// from, unwrapping reslices: the root of c := b[2:] is b. nil when the
// expression has no single variable root (a fresh call, a composite).
func rootAliasObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		s, ok := e.(*ast.SliceExpr)
		if !ok {
			break
		}
		e = s.X
	}
	if id, ok := e.(*ast.Ident); ok {
		return pass.Info.Uses[id]
	}
	return nil
}
