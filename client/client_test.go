package client_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyrisenv"
	"hyrisenv/client"
	"hyrisenv/internal/core"
	"hyrisenv/internal/fault"
	"hyrisenv/internal/server"
	"hyrisenv/internal/shard"
	"hyrisenv/internal/txn"
)

func startVolatile(t *testing.T) (*shard.Engine, *server.Server) {
	t.Helper()
	eng, err := shard.Open(shard.Config{Config: core.Config{Mode: txn.ModeNone}})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.Listen(eng, "127.0.0.1:0", server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return eng, srv
}

var cols = []hyrisenv.Column{
	{Name: "id", Type: hyrisenv.Int64},
	{Name: "v", Type: hyrisenv.String},
}

// TestRetryOnReconnect checks the idempotent-read retry: after the
// server is replaced behind the same address, the next auto-commit read
// succeeds on its first call — the stale pooled connections are purged
// and redialed inside the client.
func TestRetryOnReconnect(t *testing.T) {
	eng, srv := startVolatile(t)
	c, err := client.Dial(srv.Addr(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTable("t", cols); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Count("t"); err != nil {
		t.Fatal(err)
	}

	// Replace the server behind the same address (new engine: volatile
	// data is gone, which is fine — we only care about transport).
	addr := srv.Addr()
	srv.Close()
	eng2, err := shard.Open(shard.Config{Config: core.Config{Mode: txn.ModeNone}})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := server.Listen(eng2, addr, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv2.Close()
		eng2.Close()
	})
	_ = eng

	// The pooled connection is dead, but Ping is idempotent: one call,
	// internal retry, success.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after server swap: %v", err)
	}
	// Reads against the new (empty) server map to a clean table error,
	// proving the request reached the replacement server.
	if _, err := c.Count("t"); !errors.Is(err, client.ErrNoSuchTable) {
		t.Fatalf("count after swap: got %v, want ErrNoSuchTable", err)
	}
}

// TestWritesAreNotRetried checks that non-idempotent requests surface
// the transport error instead of being silently replayed.
func TestWritesAreNotRetried(t *testing.T) {
	_, srv := startVolatile(t)
	c, err := client.Dial(srv.Addr(), client.Options{RequestTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTable("t", cols); err != nil {
		t.Fatal(err)
	}
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	srv.Close() // server gone mid-transaction
	if _, err := tx.Insert("t", hyrisenv.Int(1), hyrisenv.Str("x")); err == nil {
		t.Fatal("insert against dead server succeeded")
	}
	// The Tx is finished; further use reports it cleanly.
	if _, err := tx.Insert("t", hyrisenv.Int(2), hyrisenv.Str("y")); !errors.Is(err, client.ErrTxDone) {
		t.Fatalf("insert on broken tx: got %v, want ErrTxDone", err)
	}
}

// TestPoolSharesConnection checks that connections multiplex: with a
// pool of one, concurrent transactions (and auto-commit reads) share
// the single connection instead of blocking each other — the server
// scopes transaction handles per connection and allows many.
func TestPoolSharesConnection(t *testing.T) {
	_, srv := startVolatile(t)
	c, err := client.Dial(srv.Addr(), client.Options{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTable("t", cols); err != nil {
		t.Fatal(err)
	}

	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// A second transaction and a read proceed on the shared connection
	// while the first is still open. The deadline would fire if either
	// had to wait for the first Tx to release anything.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	tx2, err := c.BeginContext(ctx)
	if err != nil {
		t.Fatalf("second begin on shared conn: %v", err)
	}
	if _, err := c.CountContext(ctx, "t"); err != nil {
		t.Fatalf("read alongside two open txs: %v", err)
	}

	// Both transactions commit independently and their writes land.
	if _, err := tx.Insert("t", hyrisenv.Int(1), hyrisenv.Str("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Insert("t", hyrisenv.Int(2), hyrisenv.Str("b")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	n, err := c.Count("t")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("rows = %d, want 2", n)
	}
}

// TestPipelinedSingleConn proves requests multiplex rather than
// queueing for exclusive checkout: 16 goroutines hammer a PoolSize-1
// client concurrently, and the server must see exactly one connection.
func TestPipelinedSingleConn(t *testing.T) {
	_, srv := startVolatile(t)
	c, err := client.Dial(srv.Addr(), client.Options{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTable("t", cols); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if _, err := c.Count("t"); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if n := srv.NumConns(); n != 1 {
		t.Fatalf("server sees %d conns, want 1 (requests must share the pooled conn)", n)
	}
}

// TestMidPipelineRestart kills the server while pipelined requests are
// in flight, then restarts it behind the same address. In-flight and
// queued writes must surface a definite error (never a silent replay);
// idempotent reads ride out the restart via the retry path; and the
// client must be fully usable against the replacement server.
func TestMidPipelineRestart(t *testing.T) {
	_, srv := startVolatile(t)
	addr := srv.Addr()
	c, err := client.Dial(addr, client.Options{PoolSize: 2, RequestTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTable("t", cols); err != nil {
		t.Fatal(err)
	}
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("t", hyrisenv.Int(1), hyrisenv.Str("staged")); err != nil {
		t.Fatal(err)
	}

	// Keep the pipeline busy with reads while the server dies.
	stop := make(chan struct{})
	var readErrs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Count("t"); err != nil {
					readErrs.Add(1)
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	srv.Close() // every connection drops mid-pipeline

	// The staged write's commit must report a definite failure: with the
	// connection dead the client cannot know whether it applied, so it
	// must not be replayed on a fresh connection.
	if err := tx.Commit(); err == nil {
		t.Fatal("commit across server death reported success")
	}
	close(stop)
	wg.Wait()

	// Restart behind the same address (fresh volatile engine).
	eng2, err := shard.Open(shard.Config{Config: core.Config{Mode: txn.ModeNone}})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := server.Listen(eng2, addr, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv2.Close()
		eng2.Close()
	})

	// Idempotent ping flushes the dead conns and redials transparently.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after restart: %v", err)
	}
	if err := c.CreateTable("t", cols); err != nil {
		t.Fatal(err)
	}
	tx2, err := c.Begin()
	if err != nil {
		t.Fatalf("begin after restart: %v", err)
	}
	if _, err := tx2.Insert("t", hyrisenv.Int(2), hyrisenv.Str("after")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	n, err := c.Count("t")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("rows after restart = %d, want 1 (the pre-restart staged row must not reappear)", n)
	}
}

// TestClientClose checks Close is terminal and idempotent.
func TestClientClose(t *testing.T) {
	_, srv := startVolatile(t)
	c, err := client.Dial(srv.Addr(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("ping after close: got %v, want ErrClosed", err)
	}
}

// TestPipelinedResetExactlyOnce is the acked-durability contract at the
// client-pool level: under pipelined load on a server whose fault plane
// injects connection resets and partial-frame response writes, every
// tagged write must resolve exactly once — an acked commit is visible
// exactly once, a write that failed before Commit was issued is absent
// (its transaction died with the connection and was aborted server
// side), and a commit whose ack was lost is present at most once (never
// duplicated by a retry). Reads ride ReadRetries and recover; writes
// are never replayed.
func TestPipelinedResetExactlyOnce(t *testing.T) {
	eng, err := shard.Open(shard.Config{Config: core.Config{Mode: txn.ModeNone}})
	if err != nil {
		t.Fatal(err)
	}
	plane := fault.New(fault.Config{Seed: 42, ResetProb: 0.02, PartialWriteProb: 0.01})
	srv, err := server.Listen(eng, "127.0.0.1:0", server.Config{ConnWrapper: plane.WrapConn})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	c, err := client.Dial(srv.Addr(), client.Options{
		ReadRetries:    3,
		RequestTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTable("t", cols); err != nil {
		t.Fatal(err)
	}
	plane.Enable() // setup is done; from here every conn write/read may fault

	const workers, perWorker = 8, 50
	const (
		acked  = iota // Commit returned nil: must be visible exactly once
		failed        // error before Commit was sent: must be absent
		indet         // Commit errored: ack lost in flight, at most once
	)
	status := make([]int32, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := w*perWorker + i
				tx, err := c.Begin()
				if err != nil {
					status[key] = failed
					continue
				}
				if _, err := tx.Insert("t", hyrisenv.Int(int64(key)), hyrisenv.Str(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					tx.Abort() //nolint:errcheck — connection likely dead already
					status[key] = failed
					continue
				}
				if err := tx.Commit(); err != nil {
					status[key] = indet
					continue
				}
				status[key] = acked
			}
		}(w)
	}
	// Concurrent readers keep the pipeline mixed while faults fire; their
	// errors are irrelevant here — only that they never deadlock the pool.
	stopReads := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stopReads:
					return
				default:
					c.Count("t") //nolint:errcheck — fault noise by design
				}
			}
		}()
	}
	wg.Wait()
	close(stopReads)
	readers.Wait()
	plane.Disable()

	st := plane.Stats()
	if st.Resets+st.PartialWrites == 0 {
		t.Fatal("no connection fault fired; the test exercised nothing")
	}
	var nAcked, nFailed, nIndet int
	for _, s := range status {
		switch s {
		case acked:
			nAcked++
		case failed:
			nFailed++
		default:
			nIndet++
		}
	}
	t.Logf("faults: %v; writes: %d acked, %d failed, %d indeterminate", &st, nAcked, nFailed, nIndet)
	if nAcked == 0 {
		t.Fatal("no write was ever acked under the fault plane")
	}

	// Verification pass on the same (recovered) pool, plane quiet.
	for key, s := range status {
		n, err := c.Count("t", hyrisenv.Pred{Col: "id", Op: hyrisenv.Eq, Val: hyrisenv.Int(int64(key))})
		if err != nil {
			t.Fatalf("verify key %d: %v", key, err)
		}
		switch {
		case s == acked && n != 1:
			t.Errorf("key %d: acked but visible %d times — lost or duplicated acked write", key, n)
		case s == failed && n != 0:
			t.Errorf("key %d: failed before commit but visible %d times — phantom write", key, n)
		case s == indet && n > 1:
			t.Errorf("key %d: indeterminate commit visible %d times — duplicate apply", key, n)
		}
	}
}
