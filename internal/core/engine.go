// Package core implements the Hyrise-NV storage engine: a catalog of
// main/delta column-store tables with MVCC transactions and one of three
// durability modes.
//
//   - ModeNone — volatile only; the DRAM reference point for overhead
//     measurements.
//   - ModeLog — the conventional architecture the paper compares
//     against: DRAM tables + write-ahead log + binary checkpoints;
//     restart re-reads the checkpoint, replays the log and rebuilds all
//     secondary index structures, taking time proportional to data size.
//   - ModeNVM — the paper's contribution: tables, MVCC vectors and index
//     structures live in (simulated) non-volatile memory and are updated
//     transactionally consistently, so restart re-attaches the heap and
//     fixes up only in-flight transactions: constant time, independent
//     of data size.
package core

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hyrisenv/internal/disk"
	"hyrisenv/internal/exec"
	"hyrisenv/internal/nvm"
	"hyrisenv/internal/storage"
	"hyrisenv/internal/txn"
	"hyrisenv/internal/wal"
)

// Config configures an Engine.
type Config struct {
	// Mode selects the durability mechanism.
	Mode txn.Mode
	// Dir is the data directory (heap file or checkpoint/log files).
	// Unused in ModeNone.
	Dir string
	// NVMHeapSize is the size of the simulated NVM device created on
	// first open (ModeNVM). Default 1 GiB.
	NVMHeapSize uint64
	// NVMHeapMaxSize, when non-zero, lets the heap grow online past
	// NVMHeapSize up to this bound, doubling geometrically per remap
	// (ModeNVM). Zero keeps the heap fixed-size: exhaustion surfaces as
	// out-of-space instead of growth.
	NVMHeapMaxSize uint64
	// NVMLatency injects emulated NVM latencies (ModeNVM).
	NVMLatency nvm.LatencyModel
	// NVMShadow enables the pessimistic crash model on the heap
	// (ModeNVM): stores survive a simulated crash only if a persist
	// barrier covered them. Crash testing only — the optimistic model
	// remains the benchmark default. See nvm.WithShadow.
	NVMShadow bool
	// DiskModel shapes the log/checkpoint device (ModeLog).
	DiskModel disk.Model
	// MergeThresholdRows, when non-zero, lets Maintain auto-merge tables
	// whose delta has grown past this many rows.
	MergeThresholdRows uint64
	// CheckpointLogBytes, when non-zero, lets Maintain rotate the log
	// with a fresh checkpoint once the segment exceeds this size
	// (ModeLog).
	CheckpointLogBytes uint64
	// HashDictIndex selects the O(1) persistent hash map instead of the
	// ordered skip list for NVM delta dictionary indexes.
	HashDictIndex bool
	// CompressCheckpoints flate-compresses binary checkpoints (ModeLog);
	// worthwhile when the disk, not the CPU, bounds recovery.
	CompressCheckpoints bool
	// Parallelism sets the degree of morsel parallelism of the shared
	// query executor: 0 = one worker per schedulable core (GOMAXPROCS),
	// 1 = strictly serial scans.
	Parallelism int
	// GroupCommit coalesces concurrent commits into persist groups
	// sharing one set of commit fences (ModeNVM; the WAL already group-
	// commits in ModeLog). See txn.Manager.CommitGroup.
	GroupCommit bool
	// GroupCommitMaxBatch bounds transactions per persist group
	// (default 64).
	GroupCommitMaxBatch int
	// GroupCommitMaxDelay is how long a group leader lingers for
	// followers before committing (default 0: batching comes only from
	// commits arriving while the previous group flushes).
	GroupCommitMaxDelay time.Duration
	// Clock, when non-nil, attaches a shared commit-ID clock: this engine
	// is one shard of a sharded database and draws CIDs from the global
	// clock instead of its private counter. See txn.Clock.
	Clock *txn.Clock
	// Decide2PC, when non-nil, resolves prepared two-phase-commit
	// contexts found during NVM recovery against the shard coordinator's
	// durable decision records. Nil presumes abort.
	Decide2PC txn.TwoPCDecider
}

// RecoveryStats records what (re)opening the engine had to do — the
// quantity the paper's headline experiment compares across
// architectures.
type RecoveryStats struct {
	Mode         txn.Mode
	Total        time.Duration
	TablesOpened int

	// ModeLog components.
	CheckpointLoad  time.Duration
	LogReplay       time.Duration
	IndexRebuild    time.Duration
	ReplayRecords   int
	CheckpointBytes uint64

	// ModeNVM component: the in-flight transaction fixup.
	NVM txn.NVMRecoveryStats
}

// Engine is an open database instance.
type Engine struct {
	cfg Config
	mgr *txn.Manager
	ex  *exec.Executor

	h  *nvm.Heap    // ModeNVM
	lm *wal.Manager // ModeLog

	mu          sync.RWMutex
	tables      map[string]*storage.Table
	byID        map[uint32]*storage.Table
	nextTableID uint32

	recovery RecoveryStats

	closed    atomic.Bool
	closeOnce sync.Once
	closeErr  error
}

// Errors returned by the engine.
var (
	ErrTableExists  = errors.New("core: table already exists")
	ErrNoSuchTable  = errors.New("core: no such table")
	ErrClosed       = errors.New("core: engine is closed")
	ErrWrongMode    = errors.New("core: operation not supported in this durability mode")
	ErrBadTableName = errors.New("core: invalid table name")
	maxTableNameLen = 36 // heap root names are bounded
)

// Open creates or re-opens an engine according to cfg, running the
// mode-specific recovery path and recording its cost.
func Open(cfg Config) (*Engine, error) {
	if cfg.NVMHeapSize == 0 {
		cfg.NVMHeapSize = 1 << 30
	}
	e := &Engine{
		cfg:         cfg,
		ex:          exec.New(cfg.Parallelism),
		tables:      map[string]*storage.Table{},
		byID:        map[uint32]*storage.Table{},
		nextTableID: 1,
	}
	start := time.Now()
	var err error
	switch cfg.Mode {
	case txn.ModeNone:
		e.mgr = txn.NewManager(txn.ModeNone, 0)
	case txn.ModeLog:
		err = e.openLog()
	case txn.ModeNVM:
		err = e.openNVM()
	default:
		err = fmt.Errorf("core: unknown mode %d", cfg.Mode)
	}
	if err != nil {
		return nil, err
	}
	if cfg.Clock != nil {
		e.mgr.SetClock(cfg.Clock)
	}
	e.recovery.Mode = cfg.Mode
	e.recovery.Total = time.Since(start)
	e.recovery.TablesOpened = len(e.tables)
	return e, nil
}

func (e *Engine) openLog() error {
	if e.cfg.Dir == "" {
		return errors.New("core: ModeLog requires Config.Dir")
	}
	lm, err := wal.NewManager(e.cfg.Dir, e.cfg.DiskModel)
	if err != nil {
		return err
	}
	lm.SetCompression(e.cfg.CompressCheckpoints)
	e.lm = lm
	res, err := lm.Recover()
	if err != nil {
		return err
	}
	e.recovery.CheckpointLoad = res.Stats.CheckpointTime
	e.recovery.LogReplay = res.Stats.ReplayTime
	e.recovery.ReplayRecords = res.Stats.ReplayRecords
	e.recovery.CheckpointBytes = res.Stats.CheckpointBytes
	e.nextTableID = res.NextTableID

	// Rebuild all volatile index structures — with the replay, the
	// data-size-proportional part of a conventional restart.
	idxStart := time.Now()
	for id, t := range res.Tables {
		if err := t.RebuildIndexes(); err != nil {
			return err
		}
		e.byID[id] = t
		e.tables[t.Name] = t
	}
	e.recovery.IndexRebuild = time.Since(idxStart)

	e.mgr = txn.NewManager(txn.ModeLog, res.LastCID)
	var w *wal.Writer
	if res.HasState {
		w, err = lm.OpenLogForAppend(res.LogSeq, res.ValidLogBytes)
	} else {
		w, _, err = lm.WriteCheckpoint(nil, 0, e.nextTableID)
	}
	if err != nil {
		return err
	}
	e.mgr.SetLogWriter(w)
	return nil
}

func (e *Engine) openNVM() error {
	if e.cfg.Dir == "" {
		return errors.New("core: ModeNVM requires Config.Dir")
	}
	if err := os.MkdirAll(e.cfg.Dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(e.cfg.Dir, "heap.nvm")
	opts := []nvm.Option{nvm.WithLatency(e.cfg.NVMLatency)}
	if e.cfg.NVMShadow {
		opts = append(opts, nvm.WithShadow())
	}
	if e.cfg.NVMHeapMaxSize > e.cfg.NVMHeapSize {
		opts = append(opts, nvm.WithGrowLimit(e.cfg.NVMHeapMaxSize))
	}
	h, err := nvm.Open(path, opts...)
	if errors.Is(err, fs.ErrNotExist) {
		h, err = nvm.Create(path, e.cfg.NVMHeapSize, opts...)
	}
	if err != nil {
		return err
	}
	e.h = h

	// Attach every table — O(columns) each, independent of row count.
	for _, rootName := range h.Roots() {
		if !strings.HasPrefix(rootName, "tbl:") {
			continue
		}
		root, _, _ := h.Root(rootName)
		t, err := storage.OpenNVMTable(h, strings.TrimPrefix(rootName, "tbl:"), root)
		if err != nil {
			h.Close()
			return err
		}
		e.tables[t.Name] = t
		e.byID[t.ID] = t
		if t.ID >= e.nextTableID {
			e.nextTableID = t.ID + 1
		}
	}

	// In-flight transaction fixup — O(in-flight writes). Prepared 2PC
	// contexts resolve against the shard coordinator's decision records
	// when this engine is a shard (presumed abort otherwise).
	mgr, stats, err := txn.OpenNVMManagerDecider(h, func(id uint32) *storage.Table {
		e.mu.RLock()
		defer e.mu.RUnlock()
		return e.byID[id]
	}, e.cfg.Decide2PC)
	if err != nil {
		h.Close()
		return err
	}
	e.mgr = mgr
	e.recovery.NVM = stats
	if e.cfg.GroupCommit {
		mgr.EnableGroupCommit(e.cfg.GroupCommitMaxBatch, e.cfg.GroupCommitMaxDelay)
	}
	return nil
}

// Mode returns the engine's durability mode.
func (e *Engine) Mode() txn.Mode { return e.cfg.Mode }

// RecoveryStats returns what the last Open had to do.
func (e *Engine) RecoveryStats() RecoveryStats { return e.recovery }

// Heap exposes the NVM heap (ModeNVM; nil otherwise) for statistics.
func (e *Engine) Heap() *nvm.Heap { return e.h }

// Manager exposes the transaction manager.
func (e *Engine) Manager() *txn.Manager { return e.mgr }

// Exec returns the engine's shared query executor; every read path —
// the embedded Tx API and the network server alike — runs through it.
func (e *Engine) Exec() *exec.Executor { return e.ex }

// Begin starts a transaction.
func (e *Engine) Begin() *txn.Txn { return e.mgr.Begin() }

// CreateTable creates a table with the given schema; indexedCols names
// the columns to maintain secondary indexes on.
func (e *Engine) CreateTable(name string, schema storage.Schema, indexedCols ...string) (*storage.Table, error) {
	if name == "" || len(name) > maxTableNameLen || strings.ContainsAny(name, ": ") {
		return nil, fmt.Errorf("%w: %q", ErrBadTableName, name)
	}
	var mask uint64
	for _, cn := range indexedCols {
		i := schema.ColIndex(cn)
		if i < 0 {
			return nil, fmt.Errorf("core: indexed column %q not in schema", cn)
		}
		mask |= 1 << uint(i)
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if _, exists := e.tables[name]; exists {
		return nil, fmt.Errorf("%w: %q", ErrTableExists, name)
	}
	id := e.nextTableID
	var t *storage.Table
	var err error
	if e.cfg.Mode == txn.ModeNVM {
		var opts []storage.TableOption
		if e.cfg.HashDictIndex {
			opts = append(opts, storage.WithHashDictIndex())
		}
		t, err = storage.CreateNVMTable(e.h, name, id, schema, mask, opts...)
		if err != nil {
			return nil, err
		}
		if err := e.h.SetRoot("tbl:"+name, t.Root(), 0); err != nil {
			return nil, err
		}
	} else {
		t = storage.NewVolatileTable(name, id, schema, mask)
		if err := e.mgr.LogDDL(id, name, schema, mask); err != nil {
			return nil, err
		}
	}
	e.nextTableID = id + 1
	e.tables[name] = t
	e.byID[id] = t
	return t, nil
}

// Table returns the named table.
func (e *Engine) Table(name string) (*storage.Table, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	return t, nil
}

// Tables lists all tables sorted by name.
func (e *Engine) Tables() []*storage.Table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]*storage.Table, 0, len(e.tables))
	for _, t := range e.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Checkpoint quiesces commits and writes a binary checkpoint, rotating
// the log segment (ModeLog only; no-op in ModeNVM where the data is
// always durable, error in ModeNone).
func (e *Engine) Checkpoint() error {
	switch e.cfg.Mode {
	case txn.ModeNVM:
		return nil
	case txn.ModeNone:
		return ErrWrongMode
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	tables := make([]*storage.Table, 0, len(e.tables))
	for _, t := range e.tables {
		tables = append(tables, t)
	}
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name < tables[j].Name })
	var err error
	e.mgr.BlockCommits(func() {
		old := e.mgr.LogWriter()
		if ferr := old.Flush(); ferr != nil {
			err = ferr
			return
		}
		var w *wal.Writer
		w, _, err = e.lm.WriteCheckpoint(tables, e.mgr.LastCID(), e.nextTableID)
		if err != nil {
			return
		}
		e.mgr.SetLogWriter(w)
		old.Close()
	})
	return err
}

// Merge compacts the named table's delta into a new main partition. The
// table must be quiescent (no transaction owning rows).
func (e *Engine) Merge(name string) (storage.MergeStats, error) {
	t, err := e.Table(name)
	if err != nil {
		return storage.MergeStats{}, err
	}
	var stats storage.MergeStats
	var mergeErr error
	e.mgr.BlockCommits(func() {
		stats, mergeErr = t.Merge(e.mgr.LastCID())
	})
	if mergeErr != nil {
		return stats, mergeErr
	}
	// The log-based engine must checkpoint after a merge: the merge
	// rewrote physical row IDs, invalidating log-replay addressing.
	if e.cfg.Mode == txn.ModeLog {
		return stats, e.Checkpoint()
	}
	return stats, nil
}

// Close shuts the engine down. In every mode all committed data is
// already durable; Close only releases resources.
//
// Close is idempotent and safe under concurrent callers: the release
// runs exactly once and every caller observes the same result, so a
// server's graceful shutdown racing a signal handler (both paths ending
// in Close) cannot double-unmap the heap or double-close the WAL.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		// Drain the group-commit batcher before tearing anything down:
		// in-flight groups finish against a live heap. Must happen
		// outside e.mu — group leaders may be in commit paths.
		if e.mgr != nil {
			e.mgr.DisableGroupCommit()
		}
		e.mu.Lock()
		defer e.mu.Unlock()
		e.closed.Store(true)
		if e.cfg.Mode == txn.ModeLog {
			if w := e.mgr.LogWriter(); w != nil {
				if err := w.Close(); err != nil {
					e.closeErr = err
					// Fall through: still release the heap if present.
				}
			}
		}
		if e.h != nil {
			if err := e.h.Close(); err != nil && e.closeErr == nil {
				e.closeErr = err
			}
		}
	})
	return e.closeErr
}

// Closed reports whether Close has begun.
func (e *Engine) Closed() bool { return e.closed.Load() }

// Scavenge reclaims NVM blocks that are no longer reachable from any
// table or transaction context: storage superseded by merges and blocks
// reserved by transactions that crashed between allocation and linking.
// It is an offline maintenance operation (O(heap size)); the caller must
// ensure no transactions are active. ModeNVM only.
func (e *Engine) Scavenge() (reclaimed int, err error) {
	if e.cfg.Mode != txn.ModeNVM {
		return 0, ErrWrongMode
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mgr.BlockCommits(func() {
		reclaimed = e.h.Scavenge(e.reachableLocked)
	})
	return reclaimed, nil
}

// reachableLocked yields every heap block durably reachable from the
// engine's roots (tables and transaction contexts). Caller holds e.mu
// and has quiesced commits.
func (e *Engine) reachableLocked(yield func(nvm.PPtr)) {
	for _, t := range e.tables {
		t.Blocks(yield)
	}
	e.mgr.Blocks(yield)
}

// CheckReport aggregates per-table consistency results.
type CheckReport struct {
	Tables map[string]storage.CheckReport
}

// Check runs the structural consistency checker over every table.
func (e *Engine) Check() (CheckReport, error) {
	rep := CheckReport{Tables: map[string]storage.CheckReport{}}
	for _, t := range e.Tables() {
		tr, err := t.Check()
		if err != nil {
			return rep, fmt.Errorf("table %s: %w", t.Name, err)
		}
		rep.Tables[t.Name] = tr
	}
	return rep, nil
}

// FsckReport is the result of a full database fsck.
type FsckReport struct {
	Heap   *nvm.FsckReport
	Tables CheckReport
}

// Fsck runs the full consistency suite over the NVM database: the heap
// allocator walk (with reachability from every table and transaction
// context), the deep structural walk of every table's persistent
// representation (vectors, blobs, skip lists, hash chains, posting
// lists, MVCC stamps), and the logical Table.Check. It is the
// everything-must-hold predicate the crash matrix asserts after every
// enumerated crash point. ModeNVM only; offline (no concurrent
// transactions).
func (e *Engine) Fsck() (*FsckReport, error) {
	if e.cfg.Mode != txn.ModeNVM {
		return nil, ErrWrongMode
	}
	rep := &FsckReport{Tables: CheckReport{Tables: map[string]storage.CheckReport{}}}
	var errs []error
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mgr.BlockCommits(func() {
		rep.Heap = e.h.Fsck(e.reachableLocked)
		if err := rep.Heap.Err(); err != nil {
			errs = append(errs, err)
		}
		lastCID := e.mgr.LastCID()
		for _, t := range e.tables {
			if err := t.FsckNVM(lastCID); err != nil {
				errs = append(errs, err)
			}
			tr, err := t.Check()
			if err != nil {
				errs = append(errs, fmt.Errorf("table %s: %w", t.Name, err))
			}
			rep.Tables.Tables[t.Name] = tr
		}
	})
	return rep, errors.Join(errs...)
}

// Maintain runs due background maintenance synchronously:
//
//   - tables whose delta row count exceeds Config.MergeThresholdRows are
//     merged (skipping tables that are currently busy);
//   - in ModeLog, a checkpoint is taken when the log segment exceeds
//     Config.CheckpointLogBytes.
//
// Both knobs default to "never" (zero).
func (e *Engine) Maintain() error {
	if e.cfg.MergeThresholdRows > 0 {
		for _, t := range e.Tables() {
			if t.DeltaRows() >= e.cfg.MergeThresholdRows {
				if _, err := e.Merge(t.Name); err != nil && !errors.Is(err, storage.ErrMergeBusy) {
					return err
				}
			}
		}
	}
	if e.cfg.Mode == txn.ModeLog && e.cfg.CheckpointLogBytes > 0 {
		if w := e.mgr.LogWriter(); w != nil && w.LSN() >= e.cfg.CheckpointLogBytes {
			return e.Checkpoint()
		}
	}
	return nil
}
