package disk

import (
	"io"
	"path/filepath"
	"testing"
	"time"
)

func openDev(t *testing.T, model Model) *Device {
	t.Helper()
	d, err := Open(filepath.Join(t.TempDir(), "dev"), model)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := openDev(t, Model{})
	data := []byte("hello block device")
	if _, err := d.WriteAt(data, 100); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if _, err := d.ReadAt(buf, 100); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(data) {
		t.Fatalf("read %q", buf)
	}
	st := d.Stats()
	if st.BytesWritten != uint64(len(data)) || st.BytesRead != uint64(len(data)) || st.Syncs != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSequentialWriterReader(t *testing.T) {
	d := openDev(t, Model{})
	w := d.SequentialWriter(0)
	for i := 0; i < 10; i++ {
		if _, err := w.Write([]byte("chunk-")); err != nil {
			t.Fatal(err)
		}
	}
	if w.Offset() != 60 {
		t.Fatalf("offset = %d", w.Offset())
	}
	r := d.SequentialReader(0)
	got, err := io.ReadAll(r)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if len(got) != 60 {
		t.Fatalf("read %d bytes", len(got))
	}
	if sz, _ := d.Size(); sz != 60 {
		t.Fatalf("size = %d", sz)
	}
}

func TestTruncate(t *testing.T) {
	d := openDev(t, Model{})
	d.WriteAt(make([]byte, 1000), 0)
	if err := d.Truncate(100); err != nil {
		t.Fatal(err)
	}
	if sz, _ := d.Size(); sz != 100 {
		t.Fatalf("size after truncate = %d", sz)
	}
}

func TestBandwidthModelCharges(t *testing.T) {
	// 1 MiB at 10 MiB/s should take ~100 ms; allow generous slack but
	// require it to be clearly slower than unlimited.
	slow := openDev(t, Model{WriteBandwidth: 10 << 20})
	data := make([]byte, 1<<20)
	start := time.Now()
	if _, err := slow.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	slowT := time.Since(start)
	if slowT < 50*time.Millisecond {
		t.Fatalf("bandwidth model not charged: %v", slowT)
	}

	fast := openDev(t, Model{})
	start = time.Now()
	fast.WriteAt(data, 0)
	if fastT := time.Since(start); fastT > slowT {
		t.Fatalf("unlimited device slower than modelled one: %v vs %v", fastT, slowT)
	}
}

func TestSyncLatency(t *testing.T) {
	d := openDev(t, Model{SyncLatency: 20 * time.Millisecond})
	start := time.Now()
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("sync latency not charged: %v", el)
	}
}

func TestSmallWritesAccumulateDebt(t *testing.T) {
	// Many small writes must be charged like one big write (debt
	// accounting), within slack.
	d := openDev(t, Model{WriteBandwidth: 5 << 20})
	start := time.Now()
	chunk := make([]byte, 4096)
	for i := 0; i < 256; i++ { // 1 MiB total -> ~200ms at 5MiB/s
		if _, err := d.WriteAt(chunk, int64(i*4096)); err != nil {
			t.Fatal(err)
		}
	}
	if el := time.Since(start); el < 100*time.Millisecond {
		t.Fatalf("debt accounting lost time: %v", el)
	}
}
