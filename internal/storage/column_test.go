package storage

import (
	"fmt"
	"path/filepath"
	"testing"

	"hyrisenv/internal/nvm"
)

func testNVMHeap(t *testing.T) (*nvm.Heap, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "heap.nvm")
	h, err := nvm.Create(path, 256<<20)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	t.Cleanup(func() { h.Close() })
	return h, path
}

func reopenHeap(t *testing.T, h *nvm.Heap, path string) *nvm.Heap {
	t.Helper()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	h2, err := nvm.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h2.Close() })
	return h2
}

// deltaColumns builds one column per backend so every test runs on both.
func deltaColumns(t *testing.T, typ ColType) map[string]DeltaColumn {
	t.Helper()
	h, _ := testNVMHeap(t)
	nd, err := NewNVMDelta(h, typ)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]DeltaColumn{
		"dram": NewVolatileDelta(typ),
		"nvm":  nd,
	}
}

func TestDeltaColumnAppendLookup(t *testing.T) {
	for name, d := range deltaColumns(t, TypeString) {
		t.Run(name, func(t *testing.T) {
			vals := []string{"red", "green", "red", "blue", "green", "red"}
			for i, s := range vals {
				id, err := d.Append(Str(s))
				if err != nil {
					t.Fatal(err)
				}
				if got := d.ValueID(uint64(i)); got != id {
					t.Fatalf("row %d: ValueID = %d, want %d", i, got, id)
				}
			}
			if d.Rows() != 6 {
				t.Fatalf("Rows = %d", d.Rows())
			}
			if d.DictLen() != 3 {
				t.Fatalf("DictLen = %d, want 3 distinct", d.DictLen())
			}
			// Duplicate values share IDs.
			if d.ValueID(0) != d.ValueID(2) || d.ValueID(0) != d.ValueID(5) {
				t.Fatal("duplicate values got different IDs")
			}
			for i, s := range vals {
				if got := d.Value(uint64(i)); got.S != s {
					t.Fatalf("Value(%d) = %q, want %q", i, got.S, s)
				}
			}
			id, ok := d.LookupValueID(Str("blue").EncodeKey(nil))
			if !ok || d.DictValue(id).S != "blue" {
				t.Fatalf("LookupValueID(blue) = %d,%v", id, ok)
			}
			if _, ok := d.LookupValueID(Str("purple").EncodeKey(nil)); ok {
				t.Fatal("found a value never inserted")
			}
			var n int
			d.ScanIDs(func(row, id uint64) bool { n++; return true })
			if n != 6 {
				t.Fatalf("ScanIDs visited %d", n)
			}
		})
	}
}

func TestDeltaColumnIntFloat(t *testing.T) {
	for name, d := range deltaColumns(t, TypeInt64) {
		t.Run(name+"/int", func(t *testing.T) {
			for _, v := range []int64{5, -3, 5, 0} {
				if _, err := d.Append(Int(v)); err != nil {
					t.Fatal(err)
				}
			}
			if d.DictLen() != 3 {
				t.Fatalf("DictLen = %d", d.DictLen())
			}
			if d.Value(1).I != -3 {
				t.Fatalf("Value(1) = %v", d.Value(1))
			}
		})
	}
	for name, d := range deltaColumns(t, TypeFloat64) {
		t.Run(name+"/float", func(t *testing.T) {
			d.Append(Float(3.5))
			if got := d.Value(0); got.F != 3.5 {
				t.Fatalf("Value = %v", got)
			}
		})
	}
}

func TestDeltaColumnTruncate(t *testing.T) {
	for name, d := range deltaColumns(t, TypeInt64) {
		t.Run(name, func(t *testing.T) {
			for i := int64(0); i < 10; i++ {
				d.Append(Int(i))
			}
			d.Truncate(4)
			if d.Rows() != 4 {
				t.Fatalf("Rows = %d", d.Rows())
			}
			// Appending after truncation reuses slots consistently.
			d.Append(Int(100))
			if d.Value(4).I != 100 {
				t.Fatalf("Value(4) = %v", d.Value(4))
			}
		})
	}
}

func TestNVMDeltaSurvivesReopen(t *testing.T) {
	h, path := testNVMHeap(t)
	d, err := NewNVMDelta(h, TypeString)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := d.Append(Str(fmt.Sprintf("v%03d", i%17))); err != nil {
			t.Fatal(err)
		}
	}
	h.SetRoot("col", d.Root(), 0)
	h2 := reopenHeap(t, h, path)
	root, _, _ := h2.Root("col")
	d2 := AttachNVMDelta(h2, root)
	if d2.Type() != TypeString {
		t.Fatalf("Type = %v", d2.Type())
	}
	if d2.Rows() != 100 || d2.DictLen() != 17 {
		t.Fatalf("Rows=%d DictLen=%d", d2.Rows(), d2.DictLen())
	}
	for i := 0; i < 100; i++ {
		want := fmt.Sprintf("v%03d", i%17)
		if got := d2.Value(uint64(i)); got.S != want {
			t.Fatalf("Value(%d) = %q, want %q", i, got.S, want)
		}
	}
	// Dictionary index works without rebuild: insert an existing value,
	// same ID must come back.
	id0 := d2.ValueID(0)
	id, err := d2.Append(Str("v000"))
	if err != nil {
		t.Fatal(err)
	}
	if id != id0 {
		t.Fatalf("post-restart append of existing value: id %d, want %d", id, id0)
	}
}

func mainColumns(t *testing.T, typ ColType, rowKeys [][]byte) map[string]MainColumn {
	t.Helper()
	h, _ := testNVMHeap(t)
	nm, err := BuildNVMMain(h, typ, rowKeys)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]MainColumn{
		"dram": BuildVolatileMain(typ, rowKeys),
		"nvm":  nm,
	}
}

func encodeInts(vals ...int64) [][]byte {
	keys := make([][]byte, len(vals))
	for i, v := range vals {
		keys[i] = Int(v).EncodeKey(nil)
	}
	return keys
}

func TestMainColumnBasics(t *testing.T) {
	rows := []int64{30, 10, 20, 10, 30, 30}
	for name, m := range mainColumns(t, TypeInt64, encodeInts(rows...)) {
		t.Run(name, func(t *testing.T) {
			if m.Rows() != 6 {
				t.Fatalf("Rows = %d", m.Rows())
			}
			if m.DictLen() != 3 {
				t.Fatalf("DictLen = %d", m.DictLen())
			}
			// Dictionary is sorted: IDs order like values.
			if m.DictValue(0).I != 10 || m.DictValue(1).I != 20 || m.DictValue(2).I != 30 {
				t.Fatal("dictionary not sorted")
			}
			for i, v := range rows {
				if got := m.Value(uint64(i)); got.I != v {
					t.Fatalf("Value(%d) = %v, want %d", i, got, v)
				}
			}
			id, ok := m.LookupValueID(Int(20).EncodeKey(nil))
			if !ok || id != 1 {
				t.Fatalf("LookupValueID(20) = %d,%v", id, ok)
			}
			if _, ok := m.LookupValueID(Int(15).EncodeKey(nil)); ok {
				t.Fatal("found 15")
			}
			lo, hi := m.LookupRange(Int(10).EncodeKey(nil), Int(30).EncodeKey(nil))
			if lo != 0 || hi != 2 {
				t.Fatalf("LookupRange = [%d,%d), want [0,2)", lo, hi)
			}
			var count int
			m.ScanIDs(func(row, id uint64) bool { count++; return true })
			if count != 6 {
				t.Fatalf("ScanIDs visited %d", count)
			}
		})
	}
}

func TestMainColumnEmpty(t *testing.T) {
	for name, m := range mainColumns(t, TypeInt64, nil) {
		t.Run(name, func(t *testing.T) {
			if m.Rows() != 0 || m.DictLen() != 0 {
				t.Fatalf("empty main: Rows=%d DictLen=%d", m.Rows(), m.DictLen())
			}
			if _, ok := m.LookupValueID(Int(1).EncodeKey(nil)); ok {
				t.Fatal("lookup in empty main")
			}
		})
	}
}

func TestNVMMainSurvivesReopen(t *testing.T) {
	h, path := testNVMHeap(t)
	rows := encodeInts(5, 1, 5, 9, 1)
	m, err := BuildNVMMain(h, TypeInt64, rows)
	if err != nil {
		t.Fatal(err)
	}
	h.SetRoot("main", m.Root(), 0)
	h2 := reopenHeap(t, h, path)
	root, _, _ := h2.Root("main")
	m2 := AttachNVMMain(h2, root)
	want := []int64{5, 1, 5, 9, 1}
	for i, v := range want {
		if got := m2.Value(uint64(i)); got.I != v {
			t.Fatalf("Value(%d) = %v, want %d", i, got, v)
		}
	}
	if m2.Type() != TypeInt64 {
		t.Fatal("type lost")
	}
}

func TestNVMDeltaHashDictIndex(t *testing.T) {
	h, path := testNVMHeap(t)
	d, err := NewNVMDeltaWith(h, TypeString, DictIndexHash)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := d.Append(Str(fmt.Sprintf("v%03d", i%31))); err != nil {
			t.Fatal(err)
		}
	}
	if d.DictLen() != 31 {
		t.Fatalf("DictLen = %d", d.DictLen())
	}
	id, ok := d.LookupValueID(Str("v007").EncodeKey(nil))
	if !ok || d.DictValue(id).S != "v007" {
		t.Fatal("hash dict lookup")
	}
	h.SetRoot("col", d.Root(), 0)
	h2 := reopenHeap(t, h, path)
	root, _, _ := h2.Root("col")
	d2 := AttachNVMDelta(h2, root)
	// Kind is self-describing: lookups and dedup work after reopen.
	if d2.Rows() != 200 || d2.DictLen() != 31 {
		t.Fatalf("after reopen: rows=%d dict=%d", d2.Rows(), d2.DictLen())
	}
	id0 := d2.ValueID(0)
	id2, err := d2.Append(Str("v000"))
	if err != nil || id2 != id0 {
		t.Fatalf("post-restart dedup: id=%d want %d err=%v", id2, id0, err)
	}
}

func TestNVMTableWithHashDictIndexRestart(t *testing.T) {
	h, path := testNVMHeap(t)
	tbl, err := CreateNVMTable(h, "orders", 1, ordersSchema(t), 0b001, WithHashDictIndex())
	if err != nil {
		t.Fatal(err)
	}
	h.SetRoot("tbl:orders", tbl.Root(), 0)
	for i := int64(0); i < 40; i++ {
		row, _ := tbl.AppendRow([]Value{Int(i % 7), Str("c"), Float(0)}, 1)
		commitRow(tbl, row, 2)
	}
	if _, err := tbl.Merge(3); err != nil {
		t.Fatal(err)
	}
	for i := int64(40); i < 50; i++ {
		row, _ := tbl.AppendRow([]Value{Int(i % 7), Str("c"), Float(0)}, 1)
		commitRow(tbl, row, 4)
	}
	h2 := reopenHeap(t, h, path)
	root, _, _ := h2.Root("tbl:orders")
	tbl2, err := OpenNVMTable(h2, "orders", root)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(lookupVisible(tbl2, 0, Int(3), 10)); got != 7 {
		t.Fatalf("lookup after restart = %d", got)
	}
	if _, err := tbl2.Check(); err != nil {
		t.Fatal(err)
	}
}
