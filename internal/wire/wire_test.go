package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"hyrisenv/internal/storage"
)

func TestFrameRoundTrip(t *testing.T) {
	f := Frame{Type: TypeSelect, ReqID: 0xdeadbeefcafe, TimeoutMs: 1500, Payload: []byte("hello payload")}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != f.Type || got.ReqID != f.ReqID || got.TimeoutMs != f.TimeoutMs || !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, f)
	}

	// DecodeFrame agrees with ReadFrame and reports consumed length.
	enc := AppendFrame(nil, f)
	df, n, err := DecodeFrame(append(enc, 0xff), 0) // trailing garbage must be ignored
	if err != nil || n != len(enc) {
		t.Fatalf("DecodeFrame: n=%d err=%v", n, err)
	}
	if df.ReqID != f.ReqID || !bytes.Equal(df.Payload, f.Payload) {
		t.Fatalf("DecodeFrame mismatch: %+v", df)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: TypePing, ReqID: 7}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf, 0)
	if err != nil || got.Type != TypePing || got.ReqID != 7 || len(got.Payload) != 0 {
		t.Fatalf("got %+v err %v", got, err)
	}
}

func TestFrameCorruption(t *testing.T) {
	enc := AppendFrame(nil, Frame{Type: TypeInsert, ReqID: 1, Payload: []byte("abcdef")})

	// Truncations at every length must fail with ErrTruncated, not panic.
	for i := 0; i < len(enc); i++ {
		if _, _, err := DecodeFrame(enc[:i], 0); !errors.Is(err, ErrTruncated) {
			t.Fatalf("truncated at %d: got %v", i, err)
		}
	}

	// Bad magic.
	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	if _, _, err := DecodeFrame(bad, 0); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v", err)
	}

	// Unknown type.
	bad = append([]byte(nil), enc...)
	bad[4] = 0xEE
	if _, _, err := DecodeFrame(bad, 0); !errors.Is(err, ErrBadType) {
		t.Fatalf("bad type: got %v", err)
	}

	// Flipped payload byte breaks the checksum.
	bad = append([]byte(nil), enc...)
	bad[HeaderSize] ^= 0x01
	if _, _, err := DecodeFrame(bad, 0); !errors.Is(err, ErrChecksum) {
		t.Fatalf("checksum: got %v", err)
	}

	// Oversized payload is refused before allocation.
	big := AppendFrame(nil, Frame{Type: TypeInsert, ReqID: 1, Payload: make([]byte, 1024)})
	if _, _, err := DecodeFrame(big, 512); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("too large: got %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader(big), 512); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("too large (reader): got %v", err)
	}
}

func vals(vs ...storage.Value) []storage.Value { return vs }

func TestMessageRoundTrips(t *testing.T) {
	row := vals(storage.Int(42), storage.Str("alice"), storage.Float(9.5))

	check := func(name string, enc []byte, dec func([]byte) (any, error), want any) {
		t.Helper()
		got, err := dec(enc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: got %+v want %+v", name, got, want)
		}
		// Every codec must reject trailing garbage (catches silent
		// payload confusion between message types).
		if _, err := dec(append(append([]byte{}, enc...), 0x00)); err == nil {
			t.Fatalf("%s: trailing byte accepted", name)
		}
	}

	check("hello", Hello{Version: 3}.Encode(),
		func(b []byte) (any, error) { return DecodeHello(b) }, Hello{Version: 3})
	check("hello-ok", HelloOK{Version: 1, Mode: 2, MaxPayload: 1 << 20}.Encode(),
		func(b []byte) (any, error) { return DecodeHelloOK(b) }, HelloOK{Version: 1, Mode: 2, MaxPayload: 1 << 20})
	check("hello-ok-v2", HelloOK{Version: 2, Mode: 2, MaxPayload: 1 << 20, MaxInFlight: 32}.Encode(),
		func(b []byte) (any, error) { return DecodeHelloOK(b) }, HelloOK{Version: 2, Mode: 2, MaxPayload: 1 << 20, MaxInFlight: 32})
	check("begin", BeginReq{ReadOnly: true, AtCID: 99}.Encode(),
		func(b []byte) (any, error) { return DecodeBeginReq(b) }, BeginReq{ReadOnly: true, AtCID: 99})
	check("begin-ok", BeginOK{Txn: 5, SnapshotCID: 77}.Encode(),
		func(b []byte) (any, error) { return DecodeBeginOK(b) }, BeginOK{Txn: 5, SnapshotCID: 77})
	check("txn", TxnReq{Txn: 12}.Encode(),
		func(b []byte) (any, error) { return DecodeTxnReq(b) }, TxnReq{Txn: 12})
	check("insert", InsertReq{Txn: 1, Table: "orders", Vals: row}.Encode(),
		func(b []byte) (any, error) { return DecodeInsertReq(b) }, InsertReq{Txn: 1, Table: "orders", Vals: row})
	check("update", UpdateReq{Txn: 1, Table: "orders", Row: 9, Vals: row}.Encode(),
		func(b []byte) (any, error) { return DecodeUpdateReq(b) }, UpdateReq{Txn: 1, Table: "orders", Row: 9, Vals: row})
	check("delete", DeleteReq{Txn: 1, Table: "orders", Row: 9}.Encode(),
		func(b []byte) (any, error) { return DecodeDeleteReq(b) }, DeleteReq{Txn: 1, Table: "orders", Row: 9})
	check("row-id", RowIDResp{Row: 123}.Encode(),
		func(b []byte) (any, error) { return DecodeRowIDResp(b) }, RowIDResp{Row: 123})
	check("get-row", RowReq{Txn: 2, Table: "t", Row: 3}.Encode(),
		func(b []byte) (any, error) { return DecodeRowReq(b) }, RowReq{Txn: 2, Table: "t", Row: 3})
	check("row", RowResp{Vals: row}.Encode(),
		func(b []byte) (any, error) { return DecodeRowResp(b) }, RowResp{Vals: row})
	sel := SelectReq{Txn: 4, Table: "orders", Preds: []Pred{
		{Col: "customer", Op: 0, Val: storage.Int(17)},
		{Col: "region", Op: 3, Val: storage.Str("eu")},
	}}
	check("select", sel.Encode(),
		func(b []byte) (any, error) { return DecodeSelectReq(b) }, sel)
	check("range", RangeReq{Txn: 4, Table: "t", Col: "id", Lo: storage.Int(1), Hi: storage.Int(10)}.Encode(),
		func(b []byte) (any, error) { return DecodeRangeReq(b) },
		RangeReq{Txn: 4, Table: "t", Col: "id", Lo: storage.Int(1), Hi: storage.Int(10)})
	check("row-ids", RowIDsResp{Rows: []uint64{1, 5, 9}}.Encode(),
		func(b []byte) (any, error) { return DecodeRowIDsResp(b) }, RowIDsResp{Rows: []uint64{1, 5, 9}})
	check("count", CountResp{N: 321}.Encode(),
		func(b []byte) (any, error) { return DecodeCountResp(b) }, CountResp{N: 321})
	ct := CreateTableReq{
		Name:    "orders",
		Cols:    []ColumnDef{{Name: "id", Type: 1}, {Name: "who", Type: 3}},
		Indexed: []string{"id"},
	}
	check("create-table", ct.Encode(),
		func(b []byte) (any, error) { return DecodeCreateTableReq(b) }, ct)
	tl := TablesResp{Tables: []TableStat{{Name: "a", ID: 1, MainRows: 10, DeltaRows: 2, Rows: 12}}}
	check("tables", tl.Encode(),
		func(b []byte) (any, error) { return DecodeTablesResp(b) }, tl)
	st := StatsResp{
		Mode: 2, Uptime: time.Minute, Recovery: 42 * time.Millisecond, TablesOpened: 3,
		CheckpointLoad: time.Millisecond, LogReplay: 2 * time.Millisecond,
		IndexRebuild: 3 * time.Millisecond, ReplayRecords: 100,
		RolledBack: 1, EntriesUndone: 5, NVMFlushes: 9, NVMFences: 8, NVMBytesUsed: 7,
	}
	check("stats", st.Encode(),
		func(b []byte) (any, error) { return DecodeStatsResp(b) }, st)
	check("error", ErrorResp{Code: CodeConflict, Msg: "boom"}.Encode(),
		func(b []byte) (any, error) { return DecodeErrorResp(b) }, ErrorResp{Code: CodeConflict, Msg: "boom"})
}

func TestMessageDecodersRejectCorruptInput(t *testing.T) {
	// Every decoder must reject truncations of a valid encoding at every
	// length without panicking. (Empty payloads are valid for some
	// messages only when the encoding itself is empty.)
	msgs := map[string][]byte{
		"hello":        Hello{Version: 1}.Encode(),
		"insert":       InsertReq{Txn: 1, Table: "orders", Vals: vals(storage.Int(1), storage.Str("x"))}.Encode(),
		"select":       SelectReq{Txn: 1, Table: "t", Preds: []Pred{{Col: "c", Op: 1, Val: storage.Int(3)}}}.Encode(),
		"create-table": CreateTableReq{Name: "t", Cols: []ColumnDef{{Name: "c", Type: 1}}, Indexed: []string{"c"}}.Encode(),
		"tables":       TablesResp{Tables: []TableStat{{Name: "t", ID: 1, Rows: 2}}}.Encode(),
		"stats":        StatsResp{Mode: 1}.Encode(),
		"row-ids":      RowIDsResp{Rows: []uint64{1, 2, 3}}.Encode(),
	}
	decs := map[string]func([]byte) error{
		"hello":        func(b []byte) error { _, err := DecodeHello(b); return err },
		"insert":       func(b []byte) error { _, err := DecodeInsertReq(b); return err },
		"select":       func(b []byte) error { _, err := DecodeSelectReq(b); return err },
		"create-table": func(b []byte) error { _, err := DecodeCreateTableReq(b); return err },
		"tables":       func(b []byte) error { _, err := DecodeTablesResp(b); return err },
		"stats":        func(b []byte) error { _, err := DecodeStatsResp(b); return err },
		"row-ids":      func(b []byte) error { _, err := DecodeRowIDsResp(b); return err },
	}
	for name, enc := range msgs {
		for i := 0; i < len(enc); i++ {
			if err := decs[name](enc[:i]); err == nil {
				t.Fatalf("%s: truncation at %d accepted", name, i)
			}
		}
	}

	// Absurd element counts with tiny bodies must be rejected cheaply,
	// not allocated.
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := DecodeRowIDsResp(huge); err == nil {
		t.Fatal("row-ids: absurd count accepted")
	}
	if _, err := DecodeTablesResp(huge); err == nil {
		t.Fatal("tables: absurd count accepted")
	}
}

// TestHelloOKVersionGating pins the v1 payload to its historical 7 bytes
// — a v1 client must never see the v2 fields — and the v2 payload to 11.
func TestHelloOKVersionGating(t *testing.T) {
	v1 := HelloOK{Version: 1, Mode: 1, MaxPayload: 4096, MaxInFlight: 99}.Encode()
	if len(v1) != 7 {
		t.Fatalf("v1 hello-ok payload is %d bytes, want 7", len(v1))
	}
	got, err := DecodeHelloOK(v1)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxInFlight != 0 {
		t.Fatalf("v1 decode surfaced MaxInFlight=%d", got.MaxInFlight)
	}
	v2 := HelloOK{Version: 2, Mode: 1, MaxPayload: 4096, MaxInFlight: 99}.Encode()
	if len(v2) != 11 {
		t.Fatalf("v2 hello-ok payload is %d bytes, want 11", len(v2))
	}
}
