package storage

import (
	"testing"

	"hyrisenv/internal/mvcc"
	"hyrisenv/internal/nvm"
)

func ordersSchema(t *testing.T) Schema {
	t.Helper()
	s, err := NewSchema(
		ColumnDef{"id", TypeInt64},
		ColumnDef{"customer", TypeString},
		ColumnDef{"amount", TypeFloat64},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// tables builds a table per backend.
func tables(t *testing.T) map[string]*Table {
	t.Helper()
	h, _ := testNVMHeap(t)
	nt, err := CreateNVMTable(h, "orders", 1, ordersSchema(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Table{
		"dram": NewVolatileTable("orders", 1, ordersSchema(t), 0),
		"nvm":  nt,
	}
}

// commitRow makes row visible from cid on (bypassing the txn layer).
func commitRow(t *Table, row, cid uint64) {
	s, local := t.MVCCFor(row)
	s.SetBegin(local, cid)
	s.PersistBegin(local)
	s.ReleaseRow(local, s.TID(local))
}

func TestTableAppendAndVisibility(t *testing.T) {
	for name, tbl := range tables(t) {
		t.Run(name, func(t *testing.T) {
			row, err := tbl.AppendRow([]Value{Int(1), Str("alice"), Float(9.5)}, 77)
			if err != nil {
				t.Fatal(err)
			}
			if tbl.Rows() != 1 || tbl.MainRows() != 0 {
				t.Fatalf("Rows=%d MainRows=%d", tbl.Rows(), tbl.MainRows())
			}
			// Uncommitted: only owner sees it.
			if tbl.Visible(row, 100, 0) {
				t.Fatal("uncommitted row visible")
			}
			if !tbl.Visible(row, 100, 77) {
				t.Fatal("owner cannot see own insert")
			}
			commitRow(tbl, row, 5)
			if !tbl.Visible(row, 5, 0) || tbl.Visible(row, 4, 0) {
				t.Fatal("visibility after commit")
			}
			if got := tbl.Value(1, row); got.S != "alice" {
				t.Fatalf("Value = %v", got)
			}
		})
	}
}

func TestTableSchemaValidation(t *testing.T) {
	for name, tbl := range tables(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := tbl.AppendRow([]Value{Int(1)}, 1); err == nil {
				t.Fatal("short row accepted")
			}
			if _, err := tbl.AppendRow([]Value{Str("x"), Str("y"), Float(1)}, 1); err == nil {
				t.Fatal("mistyped row accepted")
			}
		})
	}
}

func TestTableScanVisible(t *testing.T) {
	for name, tbl := range tables(t) {
		t.Run(name, func(t *testing.T) {
			for i := int64(0); i < 10; i++ {
				row, _ := tbl.AppendRow([]Value{Int(i), Str("c"), Float(0)}, 1)
				if i%2 == 0 {
					commitRow(tbl, row, 3)
				}
			}
			var visible []uint64
			tbl.ScanVisible(10, 0, func(row uint64) bool {
				visible = append(visible, row)
				return true
			})
			if len(visible) != 5 {
				t.Fatalf("visible rows = %d, want 5", len(visible))
			}
		})
	}
}

func TestTableMergeCompacts(t *testing.T) {
	for name, tbl := range tables(t) {
		t.Run(name, func(t *testing.T) {
			// Commit 10 rows, invalidate 3 of them at CID 6.
			var rows []uint64
			for i := int64(0); i < 10; i++ {
				row, _ := tbl.AppendRow([]Value{Int(i % 4), Str("c"), Float(float64(i))}, 1)
				commitRow(tbl, row, 5)
				rows = append(rows, row)
			}
			for _, r := range rows[:3] {
				s, local := tbl.MVCCFor(r)
				s.SetEnd(local, 6)
				s.PersistEnd(local)
			}
			stats, err := tbl.Merge(10)
			if err != nil {
				t.Fatal(err)
			}
			if stats.RowsBefore != 10 || stats.RowsAfter != 7 || stats.DeadDropped != 3 {
				t.Fatalf("stats = %+v", stats)
			}
			if tbl.MainRows() != 7 || tbl.Rows() != 7 {
				t.Fatalf("MainRows=%d Rows=%d", tbl.MainRows(), tbl.Rows())
			}
			// Values preserved: rows 3..9 had Int(i%4), Float(i).
			seen := map[float64]bool{}
			tbl.ScanVisible(10, 0, func(row uint64) bool {
				seen[tbl.Value(2, row).F] = true
				return true
			})
			for i := 3; i < 10; i++ {
				if !seen[float64(i)] {
					t.Fatalf("row with amount %d lost in merge", i)
				}
			}
			// Table stays writable after merge.
			row, err := tbl.AppendRow([]Value{Int(9), Str("post"), Float(99)}, 2)
			if err != nil {
				t.Fatal(err)
			}
			commitRow(tbl, row, 11)
			if !tbl.Visible(row, 11, 0) {
				t.Fatal("post-merge insert invisible")
			}
			// Merge again including the delta row.
			stats, err = tbl.Merge(12)
			if err != nil {
				t.Fatal(err)
			}
			if stats.RowsAfter != 8 {
				t.Fatalf("second merge rows = %d", stats.RowsAfter)
			}
		})
	}
}

func TestTableMergePreservesBegins(t *testing.T) {
	for name, tbl := range tables(t) {
		t.Run(name, func(t *testing.T) {
			r1, _ := tbl.AppendRow([]Value{Int(1), Str("a"), Float(1)}, 1)
			commitRow(tbl, r1, 5)
			r2, _ := tbl.AppendRow([]Value{Int(2), Str("b"), Float(2)}, 1)
			commitRow(tbl, r2, 9)
			if _, err := tbl.Merge(10); err != nil {
				t.Fatal(err)
			}
			// Begin CIDs preserved: at snapshot 7 only the first row shows.
			var n int
			tbl.ScanVisible(7, 0, func(uint64) bool { n++; return true })
			if n != 1 {
				t.Fatalf("rows visible at CID 7 after merge = %d, want 1", n)
			}
		})
	}
}

func TestTableMergeBusy(t *testing.T) {
	for name, tbl := range tables(t) {
		t.Run(name, func(t *testing.T) {
			tbl.AppendRow([]Value{Int(1), Str("a"), Float(1)}, 42) // owned, uncommitted
			if _, err := tbl.Merge(10); err != ErrMergeBusy {
				t.Fatalf("err = %v, want ErrMergeBusy", err)
			}
		})
	}
}

func TestNVMTableSurvivesReopen(t *testing.T) {
	h, path := testNVMHeap(t)
	tbl, err := CreateNVMTable(h, "orders", 3, ordersSchema(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	h.SetRoot("tbl:orders", tbl.Root(), 0)
	for i := int64(0); i < 50; i++ {
		row, _ := tbl.AppendRow([]Value{Int(i), Str("cust"), Float(float64(i) / 2)}, 1)
		commitRow(tbl, row, 2)
	}
	if _, err := tbl.Merge(3); err != nil {
		t.Fatal(err)
	}
	// More rows after the merge, still in delta.
	for i := int64(50); i < 60; i++ {
		row, _ := tbl.AppendRow([]Value{Int(i), Str("cust"), Float(float64(i) / 2)}, 1)
		commitRow(tbl, row, 4)
	}

	h2 := reopenHeap(t, h, path)
	root, _, _ := h2.Root("tbl:orders")
	tbl2, err := OpenNVMTable(h2, "orders", root)
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.ID != 3 {
		t.Fatalf("ID = %d", tbl2.ID)
	}
	if tbl2.MainRows() != 50 || tbl2.Rows() != 60 {
		t.Fatalf("MainRows=%d Rows=%d", tbl2.MainRows(), tbl2.Rows())
	}
	var sum int64
	tbl2.ScanVisible(100, 0, func(row uint64) bool {
		sum += tbl2.Value(0, row).I
		return true
	})
	if sum != 59*60/2 {
		t.Fatalf("sum of ids = %d, want %d", sum, 59*60/2)
	}
	// Writable after restart.
	row, err := tbl2.AppendRow([]Value{Int(60), Str("new"), Float(1)}, 9)
	if err != nil {
		t.Fatal(err)
	}
	commitRow(tbl2, row, 5)
	if !tbl2.Visible(row, 5, 0) {
		t.Fatal("post-restart insert invisible")
	}
}

func TestNVMTableTornRowAppendRepaired(t *testing.T) {
	h, path := testNVMHeap(t)
	tbl, err := CreateNVMTable(h, "orders", 1, ordersSchema(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	h.SetRoot("tbl:orders", tbl.Root(), 0)
	for i := int64(0); i < 5; i++ {
		row, _ := tbl.AppendRow([]Value{Int(i), Str("x"), Float(0)}, 1)
		commitRow(tbl, row, 2)
	}
	// Crash in the middle of a row append, at several barrier counts:
	// each leaves a different torn state (partial columns, partial MVCC).
	for fail := int64(1); fail <= 10; fail++ {
		func() {
			defer func() { recover() }()
			h.FailAfter(fail)
			tbl.AppendRow([]Value{Int(99), Str("torn"), Float(9)}, 7)
			h.FailAfter(0)
		}()
		h.FailAfter(0)
		h2 := reopenHeap(t, h, path)
		root, _, _ := h2.Root("tbl:orders")
		tbl2, err := OpenNVMTable(h2, "orders", root)
		if err != nil {
			t.Fatalf("fail=%d: %v", fail, err)
		}
		// All 5 committed rows intact; torn row invisible.
		var n int
		tbl2.ScanVisible(100, 0, func(row uint64) bool {
			n++
			if tbl2.Value(1, row).S == "torn" {
				t.Fatalf("fail=%d: torn row visible", fail)
			}
			return true
		})
		if n != 5 {
			t.Fatalf("fail=%d: visible rows = %d, want 5", fail, n)
		}
		// Columns re-aligned: appending must work and read back intact.
		row, err := tbl2.AppendRow([]Value{Int(123), Str("after"), Float(1)}, 3)
		if err != nil {
			t.Fatalf("fail=%d: append after repair: %v", fail, err)
		}
		commitRow(tbl2, row, 3)
		if got := tbl2.Value(0, row); got.I != 123 {
			t.Fatalf("fail=%d: misaligned append: %v", fail, got)
		}
		if got := tbl2.Value(1, row); got.S != "after" {
			t.Fatalf("fail=%d: misaligned append col1: %v", fail, got)
		}
		// Undo the extra row for the next iteration by invalidating it.
		s, local := tbl2.MVCCFor(row)
		s.SetEnd(local, 3)
		s.PersistEnd(local)
		n = 0
		tbl2.ScanVisible(100, 0, func(uint64) bool { n++; return true })
		if n != 5 {
			t.Fatalf("fail=%d: cleanup failed, visible=%d", fail, n)
		}
		h = h2
		tbl = tbl2
	}
}

func TestNVMTableMergeCrashSafety(t *testing.T) {
	h, path := testNVMHeap(t)
	tbl, err := CreateNVMTable(h, "orders", 1, ordersSchema(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	h.SetRoot("tbl:orders", tbl.Root(), 0)
	for i := int64(0); i < 20; i++ {
		row, _ := tbl.AppendRow([]Value{Int(i), Str("x"), Float(0)}, 1)
		commitRow(tbl, row, 2)
	}
	// Crash at many points during the merge; the table must always come
	// back with exactly the 20 rows (either pre- or post-merge layout).
	for fail := int64(1); fail <= 60; fail += 7 {
		func() {
			defer func() { recover() }()
			h.FailAfter(fail)
			tbl.Merge(5)
			h.FailAfter(0)
		}()
		h.FailAfter(0)
		h2 := reopenHeap(t, h, path)
		root, _, _ := h2.Root("tbl:orders")
		tbl2, err := OpenNVMTable(h2, "orders", root)
		if err != nil {
			t.Fatalf("fail=%d: %v", fail, err)
		}
		var sum int64
		var n int
		tbl2.ScanVisible(100, 0, func(row uint64) bool {
			n++
			sum += tbl2.Value(0, row).I
			return true
		})
		if n != 20 || sum != 19*20/2 {
			t.Fatalf("fail=%d: n=%d sum=%d", fail, n, sum)
		}
		h = h2
		tbl = tbl2
	}
}

func TestMVCCForAddressing(t *testing.T) {
	tbl := NewVolatileTable("t", 1, ordersSchema(t), 0)
	r, _ := tbl.AppendRow([]Value{Int(1), Str("a"), Float(1)}, 1)
	commitRow(tbl, r, 1)
	tbl.Merge(2)
	r2, _ := tbl.AppendRow([]Value{Int(2), Str("b"), Float(2)}, 1)
	s, local := tbl.MVCCFor(0)
	if s != tbl.MainMVCC() || local != 0 {
		t.Fatal("main row misaddressed")
	}
	s, local = tbl.MVCCFor(r2)
	if s != tbl.DeltaMVCC() || local != 0 {
		t.Fatal("delta row misaddressed")
	}
	if s.Begin(local) != mvcc.Inf {
		t.Fatal("fresh delta row should be uncommitted")
	}
}

var _ = nvm.PPtr(0) // keep import when tests are pruned
