package exec_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"hyrisenv/internal/core"
	"hyrisenv/internal/exec"
	"hyrisenv/internal/storage"
	"hyrisenv/internal/txn"
)

// benchRows sizes the scan benchmark table: ≥ 1M rows so the table
// spans ~64 morsels and per-morsel scheduling overhead is negligible
// against scan work.
const benchRows = 1 << 20

var benchOnce struct {
	sync.Once
	e   *core.Engine
	tbl *storage.Table
	err error
}

// benchTable builds the 1M-row table once per process: three quarters
// merged into the bit-packed main partition, the rest in the delta —
// the steady-state shape of a table under continuous ingest.
func benchTable(b *testing.B) (*core.Engine, *storage.Table) {
	b.Helper()
	benchOnce.Do(func() {
		e, err := core.Open(core.Config{Mode: txn.ModeNone})
		if err != nil {
			benchOnce.err = err
			return
		}
		sch, _ := storage.NewSchema(
			storage.ColumnDef{Name: "id", Type: storage.TypeInt64},
			storage.ColumnDef{Name: "region", Type: storage.TypeString},
			storage.ColumnDef{Name: "amount", Type: storage.TypeFloat64},
		)
		tbl, err := e.CreateTable("scanbench", sch, "id")
		if err != nil {
			benchOnce.err = err
			return
		}
		regions := []string{"north", "south", "east", "west", "emea", "apac", "amer", "anz"}
		load := func(from, to int) error {
			const batch = 10000
			for done := from; done < to; done += batch {
				tx := e.Begin()
				for i := done; i < done+batch && i < to; i++ {
					if _, err := tx.Insert(tbl, []storage.Value{
						storage.Int(int64(i)),
						storage.Str(regions[i%len(regions)]),
						storage.Float(float64(i % 100003)),
					}); err != nil {
						return err
					}
				}
				if err := tx.Commit(); err != nil {
					return err
				}
			}
			return nil
		}
		if err := load(0, benchRows*3/4); err != nil {
			benchOnce.err = err
			return
		}
		if _, err := e.Merge("scanbench"); err != nil {
			benchOnce.err = err
			return
		}
		if err := load(benchRows*3/4, benchRows); err != nil {
			benchOnce.err = err
			return
		}
		benchOnce.e, benchOnce.tbl = e, tbl
	})
	if benchOnce.err != nil {
		b.Fatal(benchOnce.err)
	}
	return benchOnce.e, benchOnce.tbl
}

// parDegrees are the Parallelism settings the scaling benchmarks sweep.
// On a machine with ≥ 4 cores the par=4 scan should run ≥ 2× the
// throughput of par=1 (see EXPERIMENTS.md E9); rows/s is reported so
// `make benchscan` can track the trajectory.
var parDegrees = []int{1, 2, 4, 8}

// BenchmarkScanPredicate is the headline number: a full-table
// non-indexed predicate scan (region != "north" AND amount < 60000)
// over 1M rows at each parallelism degree.
func BenchmarkScanPredicate(b *testing.B) {
	e, tbl := benchTable(b)
	ctx := context.Background()
	preds := []exec.Pred{
		{Col: 1, Op: exec.Ne, Val: storage.Str("north")},
		{Col: 2, Op: exec.Lt, Val: storage.Float(60000)},
	}
	for _, par := range parDegrees {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			ex := exec.New(par)
			tx := e.Begin()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ex.Count(ctx, tx, tbl, preds...); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(benchRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkScanSelect materializes the matching row IDs instead of
// counting — the allocation-heavy variant.
func BenchmarkScanSelect(b *testing.B) {
	e, tbl := benchTable(b)
	ctx := context.Background()
	pred := exec.Pred{Col: 2, Op: exec.Ge, Val: storage.Float(90000)}
	for _, par := range parDegrees {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			ex := exec.New(par)
			tx := e.Begin()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ex.Select(ctx, tx, tbl, pred); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(benchRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkGroupByParallel sweeps the aggregation path: GROUP BY region
// SUM(amount) over the same 1M rows.
func BenchmarkGroupByParallel(b *testing.B) {
	e, tbl := benchTable(b)
	ctx := context.Background()
	for _, par := range parDegrees {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			ex := exec.New(par)
			tx := e.Begin()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ex.GroupBy(ctx, tx, tbl, 1, 2); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(benchRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}
