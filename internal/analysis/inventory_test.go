package analysis_test

import (
	"testing"

	"hyrisenv/internal/analysis"
	"hyrisenv/internal/analysis/deadlinecheck"
	"hyrisenv/internal/analysis/publishcheck"
	"hyrisenv/internal/analysis/wirecodecheck"
)

// TestProductionSuppressionsLoadBearing pins the suppression inventory
// documented in README.md: every //nvmcheck:ignore in production code
// must still absorb exactly the findings it was written for. A count
// above the pin means new findings are hiding under an old comment; a
// count below means the suppression went stale and must be deleted.
// (The nvm arena-walk recoverycheck suppression is pinned separately by
// recoverycheck.TestNvmFsckSuppressionLoadBearing, and the pstruct one
// doubles as the `make crosscheck` detection-power probe.)
func TestProductionSuppressionsLoadBearing(t *testing.T) {
	cases := []struct {
		pattern  string
		analyzer *analysis.Analyzer
		want     int
	}{
		{"./internal/server", deadlinecheck.Analyzer, 5},
		{"./internal/server", wirecodecheck.Analyzer, 1},
		{"./internal/pstruct", publishcheck.Analyzer, 1},
	}
	for _, tc := range cases {
		pkgs, err := analysis.Load("../..", tc.pattern)
		if err != nil {
			t.Fatalf("loading %s: %v", tc.pattern, err)
		}
		res, err := analysis.RunDetailed(pkgs, []*analysis.Analyzer{tc.analyzer})
		if err != nil {
			t.Fatalf("running %s on %s: %v", tc.analyzer.Name, tc.pattern, err)
		}
		if got := res.Suppressed[tc.analyzer.Name]; got != tc.want {
			t.Errorf("%s on %s: %d reasoned suppression(s) absorbed a finding, want %d — update the README inventory and this pin together",
				tc.analyzer.Name, tc.pattern, got, tc.want)
		}
		for _, d := range res.Diags {
			t.Errorf("unexpected surviving finding in %s: %s", tc.pattern, d)
		}
	}
}
