package server

import (
	"testing"
	"time"
)

// TestAdmitOne pins the admission semaphore's state machine without a
// network in the way: fast-path grant, bounded wait then reject, wait
// queue overflow reject, handoff to a parked waiter on release, and the
// disabled mode.
func TestAdmitOne(t *testing.T) {
	s := New(nil, Config{MaxConcurrent: 1, AdmissionQueue: 1, AdmissionWait: 250 * time.Millisecond})

	rel, ok := s.admitOne()
	if !ok || rel == nil {
		t.Fatal("first admit must take the free slot")
	}

	// A second request parks in the wait queue (capacity 1).
	got := make(chan bool, 1)
	go func() {
		rel2, ok2 := s.admitOne()
		got <- ok2
		if ok2 {
			rel2()
		}
	}()
	// Wait until the goroutine is registered as a waiter.
	deadline := time.Now().Add(2 * time.Second)
	for s.admitWaiting.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never registered")
		}
		time.Sleep(time.Millisecond)
	}

	// A third request overflows the wait queue: immediate reject.
	if _, ok3 := s.admitOne(); ok3 {
		t.Fatal("queue-overflow admit must be rejected")
	}
	if r := s.Rejected(); r != 1 {
		t.Fatalf("Rejected() = %d, want 1", r)
	}

	// Releasing the slot admits the parked waiter.
	rel()
	if !<-got {
		t.Fatal("parked waiter was rejected despite a freed slot")
	}
}

// TestAdmitOneTimeout checks the fast-reject path: a waiter that gets no
// slot within AdmissionWait is rejected rather than queued forever.
func TestAdmitOneTimeout(t *testing.T) {
	s := New(nil, Config{MaxConcurrent: 1, AdmissionQueue: 8, AdmissionWait: 5 * time.Millisecond})
	rel, ok := s.admitOne()
	if !ok {
		t.Fatal("first admit failed")
	}
	defer rel()
	start := time.Now()
	if _, ok2 := s.admitOne(); ok2 {
		t.Fatal("admit with held slot must time out")
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("reject took %v, want ~AdmissionWait", el)
	}
	if s.Rejected() != 1 {
		t.Fatalf("Rejected() = %d, want 1", s.Rejected())
	}
}

// TestAdmitDisabled checks that a negative MaxConcurrent turns the
// admission stage off entirely.
func TestAdmitDisabled(t *testing.T) {
	s := New(nil, Config{MaxConcurrent: -1})
	for i := 0; i < 100; i++ {
		rel, ok := s.admitOne()
		if !ok {
			t.Fatal("disabled admission must always grant")
		}
		if rel != nil {
			t.Fatal("disabled admission must not hand out release funcs")
		}
	}
	if s.Rejected() != 0 {
		t.Fatalf("Rejected() = %d, want 0", s.Rejected())
	}
}
