// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies, using only the standard library. It is the substrate
// of the nvmcheck v2 analyzers: instead of approximating execution
// order by source position, persistcheck, lockcheck, sharecheck,
// pptrcheck and deadlinecheck run dataflow analyses over these graphs,
// so branchy protocols are judged per path and joined at merge points.
//
// The builder models:
//
//   - straight-line statement sequencing;
//   - if/else with short-circuit condition decomposition: a condition
//     `a && b` becomes two blocks so an effect inside `b` only occurs
//     on the path where `a` was true (and dually for `||` and `!`);
//   - for and range loops with back edges, break/continue (labeled and
//     unlabeled) and the post statement on the continue path;
//   - switch and type-switch with one block per case, fallthrough
//     edges, and an implicit-default edge when no default clause
//     exists;
//   - select with one block per communication clause (no default
//     clause means no bypass edge — the select blocks);
//   - goto and labels, including forward gotos;
//   - defer: deferred statements are recorded in Graph.Defers in
//     source order; analyses apply their effects at function exit
//     (LIFO), which assumes defers are unconditional — the
//     overwhelmingly common form. A defer inside a branch is still
//     recorded, over-approximating its execution.
//
// Function literals are not descended into: a closure is a separate
// function with its own contract and its own graph.
//
// Blocks hold leaf statements and decomposed condition expressions in
// execution order. A terminated path (return, panic, break, ...) leaves
// no fallthrough successor. Unreachable blocks are pruned, so every
// block of a finished graph is reachable from Entry; Exit is kept even
// when nothing returns (an infinite loop) and then has no
// predecessors.
package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// A Block is one basic block: a maximal sequence of nodes with a single
// entry at the top and branching only at the bottom.
type Block struct {
	// Index is the block's position in Graph.Blocks after pruning;
	// Entry is always 0.
	Index int
	// Kind names the construct that created the block (entry, exit,
	// if.then, for.head, ...) for debugging and golden tests.
	Kind string
	// Nodes are the leaf statements and decomposed condition
	// expressions of the block, in execution order.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges.
	Succs []*Block
	Preds []*Block
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	Entry *Block
	// Exit is the single synthetic exit block every return edges to.
	// Falling off the end of the body appends a synthetic
	// *ast.ReturnStmt positioned at the closing brace, so every
	// normal-termination path ends in a ReturnStmt node.
	Exit *Block
	// Blocks lists every reachable block plus Exit, Entry first.
	Blocks []*Block
	// Defers are the defer statements of the body in source order.
	// Analyses model them as running, in reverse order, on every
	// return edge.
	Defers []*ast.DeferStmt
}

// New builds the CFG of body. The builder never panics on syntactically
// valid input, even when it is semantically broken (goto to a missing
// label, break outside a loop, ...): such edges simply terminate or
// dangle and are pruned.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{
		labels: map[string]*labelInfo{},
	}
	b.graph = &Graph{}
	b.graph.Entry = b.newBlock("entry")
	b.graph.Exit = b.newBlock("exit")
	b.cur = b.graph.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		// Falling off the end is an implicit return.
		b.add(&ast.ReturnStmt{Return: body.Rbrace})
		b.edge(b.cur, b.graph.Exit)
	}
	b.finish()
	return b.graph
}

type labelInfo struct {
	// target is the block a goto to this label jumps to.
	target *Block
	// brk/cont are the break/continue targets when the labeled
	// statement is a loop, switch or select.
	brk, cont *Block
}

// loopCtx is one enclosing breakable construct.
type loopCtx struct {
	brk  *Block // break target (nil inside bare blocks)
	cont *Block // continue target (nil for switch/select)
	// nextCase is the following case body, the fallthrough target
	// (switch only).
	nextCase *Block
}

type builder struct {
	graph  *Graph
	all    []*Block // every block ever made, pre-pruning
	cur    *Block   // nil when the current path has terminated
	stack  []loopCtx
	labels map[string]*labelInfo
	// pendingLabel is set between seeing `L:` and building the labeled
	// statement, so loops register their break/continue targets on L.
	pendingLabel *labelInfo
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Kind: kind}
	b.all = append(b.all, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// add appends n to the current block, starting a fresh one when the
// path had terminated (unreachable code still gets built, then pruned).
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// seal switches the current block to next, adding the fallthrough edge.
func (b *builder) seal(next *Block) {
	if b.cur != nil {
		b.edge(b.cur, next)
	}
	b.cur = next
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		if b.cur != nil {
			b.edge(b.cur, b.graph.Exit)
		}
		b.cur = nil
	case *ast.DeferStmt:
		b.graph.Defers = append(b.graph.Defers, s)
		b.add(s)
	case *ast.ExprStmt:
		b.add(s)
		if isPanic(s.X) {
			b.cur = nil // unwinds; not a normal return
		}
	case nil:
		// ignore
	default:
		// DeclStmt, AssignStmt, IncDecStmt, SendStmt, GoStmt,
		// EmptyStmt, ...: leaf statements.
		b.add(s)
	}
}

// isPanic reports whether e is a call to the builtin panic.
func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// label returns the info record for name, creating it (with a target
// block) on first use so forward gotos work.
func (b *builder) label(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{target: b.newBlock("label." + name)}
		b.labels[name] = li
	}
	return li
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	li := b.label(s.Label.Name)
	b.seal(li.target)
	b.pendingLabel = li
	b.stmt(s.Stmt)
	b.pendingLabel = nil
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok {
	case token.GOTO:
		if s.Label != nil {
			b.edge(b.cur, b.label(s.Label.Name).target)
		}
	case token.BREAK:
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil {
				b.edge(b.cur, li.brk)
			}
		} else if t := b.innermost(func(c loopCtx) *Block { return c.brk }); t != nil {
			b.edge(b.cur, t)
		}
	case token.CONTINUE:
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil {
				b.edge(b.cur, li.cont)
			}
		} else if t := b.innermost(func(c loopCtx) *Block { return c.cont }); t != nil {
			b.edge(b.cur, t)
		}
	case token.FALLTHROUGH:
		if len(b.stack) > 0 {
			b.edge(b.cur, b.stack[len(b.stack)-1].nextCase)
		}
	}
	b.cur = nil
}

// innermost returns the innermost non-nil target selected by get.
func (b *builder) innermost(get func(loopCtx) *Block) *Block {
	for i := len(b.stack) - 1; i >= 0; i-- {
		if t := get(b.stack[i]); t != nil {
			return t
		}
	}
	return nil
}

// cond builds the control flow of a boolean condition, branching to t
// when it evaluates true and f when false, decomposing short-circuit
// operators into separate blocks.
func (b *builder) cond(e ast.Expr, t, f *Block) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		b.cond(x.X, t, f)
		return
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, f, t)
			return
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			rhs := b.newBlock("cond.and")
			b.cond(x.X, rhs, f)
			b.cur = rhs
			b.cond(x.Y, t, f)
			return
		case token.LOR:
			rhs := b.newBlock("cond.or")
			b.cond(x.X, t, rhs)
			b.cur = rhs
			b.cond(x.Y, t, f)
			return
		}
	}
	b.add(e)
	b.edge(b.cur, t)
	b.edge(b.cur, f)
	b.cur = nil
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	then := b.newBlock("if.then")
	done := b.newBlock("if.done")
	if s.Else != nil {
		els := b.newBlock("if.else")
		b.cond(s.Cond, then, els)
		b.cur = els
		b.stmt(s.Else)
		b.seal(done)
	} else {
		b.cond(s.Cond, then, done)
	}
	b.cur = then
	b.stmtList(s.Body.List)
	b.seal(done)
	b.cur = done
}

// pushLoop registers the break/continue targets, also on the pending
// label when the loop was labeled.
func (b *builder) pushLoop(brk, cont *Block) {
	if b.pendingLabel != nil {
		b.pendingLabel.brk = brk
		b.pendingLabel.cont = cont
		b.pendingLabel = nil
	}
	b.stack = append(b.stack, loopCtx{brk: brk, cont: cont})
}

func (b *builder) popLoop() { b.stack = b.stack[:len(b.stack)-1] }

func (b *builder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for.head")
	body := b.newBlock("for.body")
	done := b.newBlock("for.done")
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		cont = post
	}
	b.seal(head)
	if s.Cond != nil {
		b.cond(s.Cond, body, done)
	} else {
		b.edge(head, body)
		b.cur = nil
	}
	b.pushLoop(done, cont)
	b.cur = body
	b.stmtList(s.Body.List)
	if post != nil {
		b.seal(post)
		b.stmt(s.Post)
		b.seal(head)
		b.cur = nil
	} else {
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.cur = nil
	}
	b.popLoop()
	b.cur = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	// The range expression is evaluated once, before the loop.
	b.add(s.X)
	head := b.newBlock("range.head")
	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	b.seal(head)
	b.edge(head, body)
	b.edge(head, done)
	b.pushLoop(done, head)
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.cur = nil
	b.popLoop()
	b.cur = done
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	b.caseBodies(s.Body, true, nil)
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.caseBodies(s.Body, false, s.Assign)
}

// caseBodies builds switch/type-switch dispatch: one block per case,
// all reachable from the head, plus a bypass edge when there is no
// default clause. fallthrough (plain switch only) edges to the next
// case body in source order.
func (b *builder) caseBodies(body *ast.BlockStmt, allowFallthrough bool, assign ast.Stmt) {
	head := b.cur
	if head == nil {
		head = b.newBlock("unreachable")
		b.cur = head
	}
	done := b.newBlock("switch.done")
	if b.pendingLabel != nil {
		b.pendingLabel.brk = done
		b.pendingLabel = nil
	}
	var cases []*ast.CaseClause
	for _, st := range body.List {
		if cc, ok := st.(*ast.CaseClause); ok {
			cases = append(cases, cc)
		}
	}
	blocks := make([]*Block, len(cases))
	hasDefault := false
	for i, cc := range cases {
		kind := "switch.case"
		if cc.List == nil {
			kind = "switch.default"
			hasDefault = true
		}
		blocks[i] = b.newBlock(kind)
		b.edge(head, blocks[i])
	}
	if !hasDefault {
		b.edge(head, done)
	}
	for i, cc := range cases {
		b.cur = blocks[i]
		// Guard expressions (and the type-switch assign) are evaluated
		// on the path into the case; the model places them at the top
		// of the case body.
		if assign != nil {
			b.cur.Nodes = append(b.cur.Nodes, assign)
		}
		for _, e := range cc.List {
			b.cur.Nodes = append(b.cur.Nodes, e)
		}
		ctx := loopCtx{brk: done}
		if allowFallthrough && i+1 < len(cases) {
			ctx.nextCase = blocks[i+1]
		}
		b.stack = append(b.stack, ctx)
		b.stmtList(cc.Body)
		b.popLoop()
		b.seal(done)
		b.cur = nil
	}
	b.cur = done
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	head := b.cur
	if head == nil {
		head = b.newBlock("unreachable")
		b.cur = head
	}
	done := b.newBlock("select.done")
	if b.pendingLabel != nil {
		b.pendingLabel.brk = done
		b.pendingLabel = nil
	}
	var clauses []*ast.CommClause
	for _, st := range s.Body.List {
		if cc, ok := st.(*ast.CommClause); ok {
			clauses = append(clauses, cc)
		}
	}
	if len(clauses) == 0 {
		// select {} blocks forever; following code is unreachable.
		b.cur = done
		return
	}
	for _, cc := range clauses {
		kind := "select.comm"
		if cc.Comm == nil {
			kind = "select.default"
		}
		blk := b.newBlock(kind)
		b.edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.cur.Nodes = append(b.cur.Nodes, cc.Comm)
		}
		b.stack = append(b.stack, loopCtx{brk: done})
		b.stmtList(cc.Body)
		b.popLoop()
		b.seal(done)
		b.cur = nil
	}
	b.cur = done
}

// finish prunes unreachable blocks, computes predecessor lists,
// deduplicates edges and assigns indices.
func (b *builder) finish() {
	g := b.graph
	reach := map[*Block]bool{g.Entry: true}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range blk.Succs {
			if !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}
	var blocks []*Block
	for _, blk := range b.all {
		if reach[blk] || blk == g.Exit {
			blocks = append(blocks, blk)
		}
	}
	// Entry first, Exit last, others in creation order.
	var ordered []*Block
	ordered = append(ordered, g.Entry)
	for _, blk := range blocks {
		if blk != g.Entry && blk != g.Exit {
			ordered = append(ordered, blk)
		}
	}
	ordered = append(ordered, g.Exit)
	for i, blk := range ordered {
		blk.Index = i
		// Drop edges to pruned blocks and deduplicate.
		var succs []*Block
		seen := map[*Block]bool{}
		for _, s := range blk.Succs {
			if (reach[s] || s == g.Exit) && !seen[s] {
				seen[s] = true
				succs = append(succs, s)
			}
		}
		blk.Succs = succs
	}
	for _, blk := range ordered {
		blk.Preds = nil
	}
	for _, blk := range ordered {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	g.Blocks = ordered
}

// ---------------------------------------------------------------------------
// Queries.

// ReversePostorder returns the blocks in reverse postorder from Entry —
// the iteration order that makes forward dataflow converge fastest.
// Exit is included at its natural position; unreachable Exit comes
// last.
func (g *Graph) ReversePostorder() []*Block {
	seen := map[*Block]bool{}
	var post []*Block
	var dfs func(*Block)
	dfs = func(blk *Block) {
		seen[blk] = true
		for _, s := range blk.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, blk)
	}
	dfs(g.Entry)
	var rpo []*Block
	for i := len(post) - 1; i >= 0; i-- {
		rpo = append(rpo, post[i])
	}
	if !seen[g.Exit] {
		rpo = append(rpo, g.Exit)
	}
	return rpo
}

// Dominators returns the immediate-dominator relation: idom[b] is the
// closest strict dominator of b. Entry has no entry in the map. Blocks
// unreachable from Entry (only Exit can be) are absent.
func (g *Graph) Dominators() map[*Block]*Block {
	// Cooper–Harvey–Kennedy iterative algorithm over RPO.
	rpo := g.ReversePostorder()
	order := map[*Block]int{}
	for i, blk := range rpo {
		order[blk] = i
	}
	idom := map[*Block]*Block{g.Entry: g.Entry}
	intersect := func(a, b *Block) *Block {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, blk := range rpo {
			if blk == g.Entry {
				continue
			}
			var newIdom *Block
			for _, p := range blk.Preds {
				if idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[blk] != newIdom {
				idom[blk] = newIdom
				changed = true
			}
		}
	}
	delete(idom, g.Entry)
	return idom
}

// ---------------------------------------------------------------------------
// Debug formatting (golden tests).

// Format renders the graph as deterministic text: one paragraph per
// block with its kind, abbreviated nodes and successor indices.
func (g *Graph) Format(fset *token.FileSet) string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s", blk.Index, blk.Kind)
		if len(blk.Succs) > 0 {
			var ss []string
			for _, s := range blk.Succs {
				ss = append(ss, fmt.Sprintf("b%d", s.Index))
			}
			fmt.Fprintf(&sb, " -> %s", strings.Join(ss, " "))
		}
		sb.WriteString("\n")
		for _, n := range blk.Nodes {
			fmt.Fprintf(&sb, "\t%s\n", nodeText(fset, n))
		}
	}
	return sb.String()
}

// nodeText abbreviates one node to a single line.
func nodeText(fset *token.FileSet, n ast.Node) string {
	if r, ok := n.(*ast.ReturnStmt); ok && len(r.Results) == 0 {
		return "return"
	}
	var buf bytes.Buffer
	cfgPrinter.Fprint(&buf, fset, n)
	s := strings.Join(strings.Fields(buf.String()), " ")
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}

var cfgPrinter = &printer.Config{Mode: printer.RawFormat}
