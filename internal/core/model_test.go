package core

import (
	"fmt"
	"math/rand"
	"testing"

	"hyrisenv/internal/storage"
	"hyrisenv/internal/txn"
)

// Model-based testing: a random operation stream is applied both to the
// engine and to a plain map; after every step (including restarts and
// merges) the visible table contents must equal the model exactly.

func kvSchema(t *testing.T) storage.Schema {
	t.Helper()
	s, err := storage.NewSchema(
		storage.ColumnDef{Name: "k", Type: storage.TypeInt64},
		storage.ColumnDef{Name: "v", Type: storage.TypeString},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func compareToModel(t *testing.T, e *Engine, tbl *storage.Table, model map[int64]string, step int) {
	t.Helper()
	tx := e.Begin()
	got := make(map[int64]string)
	tbl.ScanVisible(tx.SnapshotCID(), 0, func(row uint64) bool {
		k := tbl.Value(0, row).I
		if prev, dup := got[k]; dup {
			t.Fatalf("step %d: key %d visible twice (%q and %q)", step, k, prev, tbl.Value(1, row).S)
		}
		got[k] = tbl.Value(1, row).S
		return true
	})
	if len(got) != len(model) {
		t.Fatalf("step %d: %d visible keys, model has %d", step, len(got), len(model))
	}
	for k, v := range model {
		if got[k] != v {
			t.Fatalf("step %d: key %d = %q, model %q", step, k, got[k], v)
		}
	}
	// Spot-check the index agrees with the scan.
	for k := range model {
		rows := selectEq(tx, tbl, 0, storage.Int(k))
		if len(rows) != 1 {
			t.Fatalf("step %d: index lookup of %d returned %d rows", step, k, len(rows))
		}
		break
	}
}

func findRow(e *Engine, tbl *storage.Table, tx *txn.Txn, k int64) (uint64, bool) {
	rows := selectEq(tx, tbl, 0, storage.Int(k))
	if len(rows) != 1 {
		return 0, false
	}
	return rows[0], true
}

func TestEngineMatchesModel(t *testing.T) {
	for _, mode := range []txn.Mode{txn.ModeLog, txn.ModeNVM} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			e := openEngine(t, mode, dir)
			tbl, err := e.CreateTable("kv", kvSchema(t), "k")
			if err != nil {
				t.Fatal(err)
			}
			model := make(map[int64]string)
			rng := rand.New(rand.NewSource(0x30DE1))
			nextKey := int64(0)

			const steps = 600
			for step := 0; step < steps; step++ {
				switch p := rng.Intn(100); {
				case p < 40: // insert
					k := nextKey
					nextKey++
					v := fmt.Sprintf("v%d-%d", k, rng.Intn(1000))
					tx := e.Begin()
					if _, err := tx.Insert(tbl, []storage.Value{storage.Int(k), storage.Str(v)}); err != nil {
						t.Fatal(err)
					}
					if err := tx.Commit(); err != nil {
						t.Fatal(err)
					}
					model[k] = v
				case p < 60 && len(model) > 0: // update
					k := randomKey(rng, model)
					v := fmt.Sprintf("u%d-%d", k, rng.Intn(1000))
					tx := e.Begin()
					row, ok := findRow(e, tbl, tx, k)
					if !ok {
						t.Fatalf("step %d: key %d lost", step, k)
					}
					if _, err := tx.Update(tbl, row, []storage.Value{storage.Int(k), storage.Str(v)}); err != nil {
						t.Fatal(err)
					}
					if err := tx.Commit(); err != nil {
						t.Fatal(err)
					}
					model[k] = v
				case p < 72 && len(model) > 0: // delete
					k := randomKey(rng, model)
					tx := e.Begin()
					row, ok := findRow(e, tbl, tx, k)
					if !ok {
						t.Fatalf("step %d: key %d lost", step, k)
					}
					if err := tx.Delete(tbl, row); err != nil {
						t.Fatal(err)
					}
					if err := tx.Commit(); err != nil {
						t.Fatal(err)
					}
					delete(model, k)
				case p < 78: // aborted transaction: no model change
					tx := e.Begin()
					tx.Insert(tbl, []storage.Value{storage.Int(nextKey + 1000000), storage.Str("ghost")})
					if len(model) > 0 {
						k := randomKey(rng, model)
						if row, ok := findRow(e, tbl, tx, k); ok {
							tx.Delete(tbl, row)
						}
					}
					tx.Abort()
				case p < 84: // merge
					if _, err := e.Merge("kv"); err != nil {
						t.Fatal(err)
					}
				case p < 90: // restart
					if err := e.Close(); err != nil {
						t.Fatal(err)
					}
					e = openEngine(t, mode, dir)
					tbl, err = e.Table("kv")
					if err != nil {
						t.Fatal(err)
					}
				default: // checkpoint (log mode), no-op otherwise
					if mode == txn.ModeLog {
						if err := e.Checkpoint(); err != nil {
							t.Fatal(err)
						}
					}
				}
				if step%25 == 24 {
					compareToModel(t, e, tbl, model, step)
				}
			}
			compareToModel(t, e, tbl, model, steps)
		})
	}
}

func randomKey(rng *rand.Rand, m map[int64]string) int64 {
	i := rng.Intn(len(m))
	for k := range m {
		if i == 0 {
			return k
		}
		i--
	}
	panic("unreachable")
}
