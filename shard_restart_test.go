package hyrisenv_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"hyrisenv"
)

// TestRestartFlatAcrossShardCounts is the regression guard for the
// sharded instant-restart property (experiment E12): recovery fans out
// across shards concurrently, so reopening the same dataset partitioned
// 8 ways must not cost materially more than reopening it unpartitioned.
// The budget is 2x the single-shard time (the paper's property is
// per-shard recovery of 1/N the data, run in parallel) plus a fixed
// floor that keeps the test meaningful on noisy CI machines where both
// times are a few milliseconds.
func TestRestartFlatAcrossShardCounts(t *testing.T) {
	const rows = 20000
	recoveryTime := func(shards int) time.Duration {
		t.Helper()
		dir := t.TempDir()
		cfg := hyrisenv.Config{
			Mode: hyrisenv.NVM, Dir: dir, NVMHeapSize: 64 << 20, Shards: shards,
		}
		db, err := hyrisenv.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := db.CreateTable("orders", []hyrisenv.Column{
			{Name: "id", Type: hyrisenv.Int64},
			{Name: "customer", Type: hyrisenv.String},
			{Name: "amount", Type: hyrisenv.Float64},
		}, "id")
		if err != nil {
			t.Fatal(err)
		}
		for done := 0; done < rows; done += 1000 {
			tx := db.Begin()
			for i := done; i < done+1000; i++ {
				if _, err := tx.Insert(tbl,
					hyrisenv.Int(int64(i)),
					hyrisenv.Str(fmt.Sprintf("c%d", i%97)),
					hyrisenv.Float(float64(i)),
				); err != nil {
					t.Fatal(err)
				}
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}

		db2, err := hyrisenv.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer db2.Close()
		tbl2, err := db2.Table("orders")
		if err != nil {
			t.Fatal(err)
		}
		n, err := db2.Begin().CountContext(context.Background(), tbl2)
		if err != nil {
			t.Fatal(err)
		}
		if n != rows {
			t.Fatalf("shards=%d: %d rows after restart, want %d", shards, n, rows)
		}
		rs := db2.RecoveryStats()
		if rs.Shards != shards {
			t.Fatalf("RecoveryStats.Shards = %d, want %d", rs.Shards, shards)
		}
		return rs.Total
	}

	t1 := recoveryTime(1)
	t8 := recoveryTime(8)
	budget := 2 * t1
	if floor := 250 * time.Millisecond; budget < floor {
		budget = floor
	}
	t.Logf("recovery: shards=1 %s, shards=8 %s (budget %s)", t1, t8, budget)
	if t8 > budget {
		t.Fatalf("restart not flat: shards=8 recovered in %s, over the %s budget (shards=1: %s)",
			t8, budget, t1)
	}
}
