// Order processing: a TPC-C-flavoured multi-table transactional
// workload on the NVM engine — new-order and payment transactions over
// customers, orders and order lines — followed by a simulated restart
// that demonstrates cross-table transactional consistency surviving
// power loss.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"

	"hyrisenv/internal/core"
	"hyrisenv/internal/storage"
	"hyrisenv/internal/txn"
	"hyrisenv/internal/workload"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "hyrisenv-orders-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	e, err := core.Open(core.Config{Mode: txn.ModeNVM, Dir: dir, NVMHeapSize: 512 << 20})
	if err != nil {
		log.Fatal(err)
	}

	w, err := workload.SetupTPCCLite(e, 200, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("loaded 200 customers; running 1000 transactions (2/3 new-order, 1/3 payment)...")

	rng := rand.New(rand.NewSource(42))
	var newOrders, payments, conflicts int
	for i := 0; i < 1000; i++ {
		var err error
		if i%3 == 2 {
			err = w.Payment(rng)
			if err == nil {
				payments++
			}
		} else {
			err = w.NewOrder(rng)
			if err == nil {
				newOrders++
			}
		}
		if err == txn.ErrConflict {
			conflicts++
		} else if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("committed %d new orders, %d payments (%d conflicts)\n", newOrders, payments, conflicts)

	// Consistency check before the "power failure".
	check := func(e *core.Engine, label string) (int, int) {
		tx := e.Begin()
		orders, _ := e.Table("orders")
		lines, _ := e.Table("orderlines")
		orderRows, err := e.Exec().ScanAll(context.Background(), tx, orders)
		if err != nil {
			log.Fatal(err)
		}
		lineRows, err := e.Exec().ScanAll(context.Background(), tx, lines)
		if err != nil {
			log.Fatal(err)
		}
		// Every order's o_lines column must match its actual line count.
		var wantLines int64
		for _, r := range orderRows {
			wantLines += orders.Value(2, r).I
		}
		if int64(len(lineRows)) != wantLines {
			log.Fatalf("%s: %d order lines, orders promise %d — inconsistent!",
				label, len(lineRows), wantLines)
		}
		fmt.Printf("%s: %d orders with %d lines — consistent\n", label, len(orderRows), len(lineRows))
		return len(orderRows), len(lineRows)
	}
	ordersBefore, linesBefore := check(e, "before restart")

	// Leave a transaction hanging mid-flight and drop the engine — the
	// simulated power failure. Its half-inserted order must vanish.
	hang := e.Begin()
	if _, err := hang.Insert(w.Orders, []storage.Value{
		storage.Int(999999), storage.Int(0), storage.Int(3), storage.Int(0),
	}); err != nil {
		log.Fatal(err)
	}
	// ... power fails before the order lines are written or committed.
	if err := e.Close(); err != nil {
		log.Fatal(err)
	}

	// Restart: cross-table atomicity must hold without any replay.
	e2, err := core.Open(core.Config{Mode: txn.ModeNVM, Dir: dir, NVMHeapSize: 512 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer e2.Close()
	rs := e2.RecoveryStats()
	fmt.Printf("restart took %s (%d tables re-attached, %d in-flight rolled back)\n",
		rs.Total, rs.TablesOpened, rs.NVM.RolledBack)
	ordersAfter, linesAfter := check(e2, "after restart")
	if ordersAfter != ordersBefore || linesAfter != linesBefore {
		log.Fatal("restart lost committed transactions!")
	}

	// The engine keeps working: one more order.
	w2, err := workload.AttachTPCCLite(e2, 200, 500)
	if err != nil {
		log.Fatal(err)
	}
	if err := w2.NewOrder(rng); err != nil {
		log.Fatal(err)
	}
	check(e2, "after post-restart order")
}
