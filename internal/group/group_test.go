package group

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSingleCallerCommitsAlone(t *testing.T) {
	var got [][]int
	b := New[int](Config{}, func(xs []int) error {
		got = append(got, append([]int(nil), xs...))
		return nil
	})
	defer b.Close()
	if err := b.Do(7); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0]) != 1 || got[0][0] != 7 {
		t.Fatalf("got %v", got)
	}
}

func TestConcurrentCallersCoalesce(t *testing.T) {
	const n = 64
	// Block the first group's commit so every other caller piles into
	// the forming group behind the token.
	release := make(chan struct{})
	first := make(chan struct{})
	var once sync.Once
	b := New[int](Config{MaxBatch: n}, func(xs []int) error {
		once.Do(func() { close(first); <-release })
		return nil
	})
	defer b.Close()

	go b.Do(-1) // leader of group 1, parked in commit
	<-first

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := b.Do(i); err != nil {
				t.Errorf("Do(%d): %v", i, err)
			}
		}(i)
	}
	// Give the callers time to join the forming group, then unblock.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	groups, items := b.Stats()
	if items != n+1 {
		t.Fatalf("items = %d, want %d", items, n+1)
	}
	// All n late callers must have shared far fewer than n groups; with
	// the first group parked they should coalesce into very few (usually
	// exactly one).
	if groups > 8 {
		t.Fatalf("groups = %d for %d concurrent callers: no coalescing", groups, n)
	}
}

func TestMaxBatchSealsGroup(t *testing.T) {
	release := make(chan struct{})
	first := make(chan struct{})
	var once sync.Once
	var sizes []int
	var mu sync.Mutex
	b := New[int](Config{MaxBatch: 4}, func(xs []int) error {
		once.Do(func() { close(first); <-release })
		mu.Lock()
		sizes = append(sizes, len(xs))
		mu.Unlock()
		return nil
	})
	defer b.Close()

	go b.Do(-1)
	<-first
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); b.Do(i) }(i)
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for _, s := range sizes {
		if s > 4 {
			t.Fatalf("group of %d exceeds MaxBatch 4 (sizes %v)", s, sizes)
		}
	}
}

func TestErrorBroadcastToWholeGroup(t *testing.T) {
	boom := errors.New("boom")
	release := make(chan struct{})
	first := make(chan struct{})
	var once sync.Once
	b := New[int](Config{MaxBatch: 16}, func(xs []int) error {
		once.Do(func() { close(first); <-release })
		if len(xs) > 1 {
			return boom
		}
		return nil
	})
	defer b.Close()

	go b.Do(-1)
	<-first
	var wg sync.WaitGroup
	var failed atomic.Int32
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := b.Do(i); errors.Is(err, boom) {
				failed.Add(1)
			}
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if failed.Load() != 8 {
		t.Fatalf("%d callers saw the group error, want 8", failed.Load())
	}
}

func TestPanicBroadcastsAndPropagates(t *testing.T) {
	b := New[int](Config{}, func(xs []int) error { panic("crash") })
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		b.Do(1)
	}()
	if r := <-done; r == nil {
		t.Fatal("panic did not propagate on the leader goroutine")
	}
	// The batcher must stay usable: the token was returned during unwind.
	ok := New[int](Config{}, func(xs []int) error { return nil })
	if err := ok.Do(1); err != nil {
		t.Fatal(err)
	}
	// And followers of a panicking group see ErrPanicked rather than
	// hanging: reconstruct with a parked group.
	release := make(chan struct{})
	first := make(chan struct{})
	var once sync.Once
	p := New[int](Config{MaxBatch: 16}, func(xs []int) error {
		once.Do(func() { close(first); <-release })
		if len(xs) > 1 {
			panic("group crash")
		}
		return nil
	})
	go func() {
		defer func() { recover() }()
		p.Do(-1)
	}()
	<-first
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	leaders := make(chan any, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { leaders <- recover() }()
			errs <- p.Do(i)
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	close(errs)
	got := 0
	for err := range errs {
		if errors.Is(err, ErrPanicked) {
			got++
		}
	}
	// One member is the leader (its goroutine panics and never sends);
	// every follower that did send must have seen ErrPanicked.
	if got != 3 {
		t.Fatalf("%d followers saw ErrPanicked, want 3", got)
	}
}

func TestCloseRejectsAndDrains(t *testing.T) {
	var n atomic.Int32
	b := New[int](Config{}, func(xs []int) error { n.Add(int32(len(xs))); return nil })
	if err := b.Do(1); err != nil {
		t.Fatal(err)
	}
	b.Close()
	b.Close() // idempotent
	if err := b.Do(2); !errors.Is(err, ErrClosed) {
		t.Fatalf("Do after Close = %v, want ErrClosed", err)
	}
	if n.Load() != 1 {
		t.Fatalf("committed %d items, want 1", n.Load())
	}
}

func TestMaxDelayLingers(t *testing.T) {
	var sizes []int
	var mu sync.Mutex
	b := New[int](Config{MaxBatch: 2, MaxDelay: time.Second}, func(xs []int) error {
		mu.Lock()
		sizes = append(sizes, len(xs))
		mu.Unlock()
		return nil
	})
	defer b.Close()
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); b.Do(i) }(i)
	}
	wg.Wait()
	// With MaxBatch 2, the second caller seals the group and cuts the
	// delay short: both commit together well before the 1 s delay.
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("MaxBatch did not cut MaxDelay short (%v)", elapsed)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sizes) != 1 || sizes[0] != 2 {
		t.Fatalf("sizes = %v, want one group of 2", sizes)
	}
}
