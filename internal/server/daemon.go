package server

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hyrisenv/internal/core"
	"hyrisenv/internal/disk"
	"hyrisenv/internal/fault"
	"hyrisenv/internal/shard"
	"hyrisenv/internal/txn"
)

// DaemonConfig configures RunDaemon — the shared body of the
// hyrise-nvd command, also driven directly by the integration tests
// (which re-exec the test binary as a daemon child).
type DaemonConfig struct {
	Addr        string   // listen address, e.g. "127.0.0.1:0"
	Dir         string   // data directory
	Mode        txn.Mode // durability mode
	NVMHeapSize uint64   // simulated NVM device size (ModeNVM, per shard)
	Shards      int      // hash partitions (0 or 1 = unpartitioned)
	DiskModel   disk.Model
	Server      Config

	// DrainTimeout bounds the graceful drain on SIGTERM/SIGINT before
	// stragglers are force-closed. Default 5 s.
	DrainTimeout time.Duration

	// FaultSpec, when non-empty, arms the deterministic fault-injection
	// plane (internal/fault) on the daemon: NVM allocation failures,
	// persist-latency spikes and drain stalls on the engine heap, plus
	// resets, partial-frame writes and read stalls on every accepted
	// connection. Grammar: see fault.ParseSpec. Chaos testing only.
	FaultSpec string

	// Ready, when non-nil, receives one "LISTENING <addr>" line once the
	// server accepts connections — how tests and scripts learn the bound
	// port when Addr uses port 0.
	Ready io.Writer

	// Logf receives daemon lifecycle messages (nil = silent).
	Logf func(format string, args ...any)
}

// RunDaemon opens the engine, serves it on cfg.Addr and blocks until a
// shutdown signal arrives:
//
//   - SIGTERM / SIGINT: graceful drain — stop accepting, finish
//     in-flight requests (bounded by DrainTimeout), abort open
//     transactions, then close the engine. This is the path whose safety
//     depends on Engine.Close being idempotent: a second signal during
//     the drain force-exits through the same Close.
//   - SIGUSR1: simulated power failure — the process exits immediately
//     with no drain and no Close, exactly like `hyrise-nv crash`. Under
//     ModeNVM the next start recovers instantly; under ModeLog it
//     replays the log.
func RunDaemon(cfg DaemonConfig) error {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 5 * time.Second
	}

	start := time.Now()
	eng, err := shard.Open(shard.Config{
		Config: core.Config{
			Mode:        cfg.Mode,
			Dir:         cfg.Dir,
			NVMHeapSize: cfg.NVMHeapSize,
			DiskModel:   cfg.DiskModel,
		},
		Shards: cfg.Shards,
	})
	if err != nil {
		return fmt.Errorf("open engine: %w", err)
	}
	rs := eng.RecoveryStats()
	var tables, replay, rolled int
	for _, ps := range rs.PerShard {
		tables, replay, rolled = tables+ps.TablesOpened, replay+ps.ReplayRecords, rolled+ps.NVM.RolledBack
	}
	logf("engine open in %s (mode=%s, shards=%d, %d tables, replay=%d records, rolled back=%d in-flight, 2pc decisions=%d)",
		time.Since(start).Round(time.Microsecond), cfg.Mode, eng.Shards(), tables,
		replay, rolled, rs.Decisions2PC)

	if cfg.FaultSpec != "" {
		fcfg, err := fault.ParseSpec(cfg.FaultSpec)
		if err != nil {
			eng.Close() //nolint:errcheck — already failing
			return fmt.Errorf("fault spec: %w", err)
		}
		plane := fault.New(fcfg)
		plane.Enable()
		for _, h := range eng.Heaps() {
			if h != nil {
				h.SetFaultInjector(plane)
			}
		}
		if co := eng.Coordinator(); co != nil {
			co.Heap().SetFaultInjector(plane)
		}
		cfg.Server.ConnWrapper = plane.WrapConn
		logf("fault plane armed: %s", cfg.FaultSpec)
	}

	srv, err := Listen(eng, cfg.Addr, cfg.Server)
	if err != nil {
		eng.Close() //nolint:errcheck — already failing
		return fmt.Errorf("listen: %w", err)
	}
	logf("serving on %s", srv.Addr())
	if cfg.Ready != nil {
		fmt.Fprintf(cfg.Ready, "LISTENING %s\n", srv.Addr())
	}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT, syscall.SIGUSR1)
	defer signal.Stop(sigc)

	sig := <-sigc
	if sig == syscall.SIGUSR1 {
		logf("SIGUSR1: simulating power failure (no drain, no close)")
		os.Exit(2)
	}

	logf("%s: draining connections (timeout %s)", sig, cfg.DrainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
	defer cancel()
	go func() {
		// A second SIGTERM/SIGINT cuts the drain short; Engine.Close
		// being idempotent makes this race harmless.
		if s := <-sigc; s != syscall.SIGUSR1 {
			cancel()
		} else {
			os.Exit(2)
		}
	}()
	if err := srv.Shutdown(ctx); err != nil {
		logf("drain incomplete: %v", err)
	}
	if err := eng.Close(); err != nil {
		return fmt.Errorf("close engine: %w", err)
	}
	logf("shut down cleanly")
	return nil
}
