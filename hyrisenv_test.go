package hyrisenv

import (
	"context"
	"fmt"
	"testing"
)

// Read helpers over the context-aware Tx methods; an executor error in
// these fixed-schema tests is a test bug.
func count(t *testing.T, tx *Tx, tbl *Table, preds ...Pred) int {
	t.Helper()
	n, err := tx.CountContext(context.Background(), tbl, preds...)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func sel(t *testing.T, tx *Tx, tbl *Table, preds ...Pred) []uint64 {
	t.Helper()
	rows, err := tx.SelectContext(context.Background(), tbl, preds...)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func rowOf(t *testing.T, tx *Tx, tbl *Table, row uint64) []Value {
	t.Helper()
	vals, err := tx.RowContext(context.Background(), tbl, row)
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

func orderCols() []Column {
	return []Column{
		{Name: "id", Type: Int64},
		{Name: "customer", Type: String},
		{Name: "amount", Type: Float64},
	}
}

func openAll(t *testing.T) map[string]*DB {
	t.Helper()
	out := map[string]*DB{}
	for _, mode := range []Mode{Volatile, LogBased, NVM} {
		cfg := Config{Mode: mode, NVMHeapSize: 256 << 20}
		if mode != Volatile {
			cfg.Dir = t.TempDir()
		}
		db, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		out[mode.String()] = db
	}
	return out
}

func TestPublicAPICRUD(t *testing.T) {
	for name, db := range openAll(t) {
		t.Run(name, func(t *testing.T) {
			tbl, err := db.CreateTable("orders", orderCols(), "id", "customer")
			if err != nil {
				t.Fatal(err)
			}
			tx := db.Begin()
			for i := int64(0); i < 20; i++ {
				if _, err := tx.Insert(tbl, Int(i), Str(fmt.Sprintf("c%d", i%4)), Float(float64(i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}

			rd := db.Begin()
			if got := count(t, rd, tbl); got != 20 {
				t.Fatalf("Count = %d", got)
			}
			rows := sel(t, rd, tbl, Pred{Col: "customer", Op: Eq, Val: Str("c2")})
			if len(rows) != 5 {
				t.Fatalf("Select customer=c2: %d", len(rows))
			}
			rows, err = rd.SelectRangeContext(context.Background(), tbl, "id", Int(5), Int(9))
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != 4 {
				t.Fatalf("SelectRange: %d", len(rows))
			}
			row := sel(t, rd, tbl, Pred{Col: "id", Op: Eq, Val: Int(7)})[0]
			vals := rowOf(t, rd, tbl, row)
			if vals[0].I != 7 || vals[1].S != "c3" || vals[2].F != 7 {
				t.Fatalf("Row = %v", vals)
			}

			// Update and delete.
			wr := db.Begin()
			if _, err := wr.Update(tbl, row, Int(7), Str("vip"), Float(700)); err != nil {
				t.Fatal(err)
			}
			victim := sel(t, wr, tbl, Pred{Col: "id", Op: Eq, Val: Int(3)})[0]
			if err := wr.Delete(tbl, victim); err != nil {
				t.Fatal(err)
			}
			if err := wr.Commit(); err != nil {
				t.Fatal(err)
			}
			rd2 := db.Begin()
			if got := count(t, rd2, tbl); got != 19 {
				t.Fatalf("after update+delete Count = %d", got)
			}
			if got := count(t, rd2, tbl, Pred{Col: "customer", Op: Eq, Val: Str("vip")}); got != 1 {
				t.Fatalf("updated row: %d", got)
			}

			// Merge through the public API.
			if err := db.Merge("orders"); err != nil {
				t.Fatal(err)
			}
			if tbl.MainRows() != 19 || tbl.DeltaRows() != 0 {
				t.Fatalf("after merge: main=%d delta=%d", tbl.MainRows(), tbl.DeltaRows())
			}
			rd3 := db.Begin()
			if got := count(t, rd3, tbl); got != 19 {
				t.Fatalf("post-merge Count = %d", got)
			}
		})
	}
}

func TestPublicAPIRestart(t *testing.T) {
	for _, mode := range []Mode{LogBased, NVM} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			db, err := Open(Config{Mode: mode, Dir: dir, NVMHeapSize: 256 << 20})
			if err != nil {
				t.Fatal(err)
			}
			tbl, _ := db.CreateTable("orders", orderCols(), "id")
			tx := db.Begin()
			for i := int64(0); i < 30; i++ {
				tx.Insert(tbl, Int(i), Str("x"), Float(0))
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			db2, err := Open(Config{Mode: mode, Dir: dir, NVMHeapSize: 256 << 20})
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			tbl2, err := db2.Table("orders")
			if err != nil {
				t.Fatal(err)
			}
			rd := db2.Begin()
			if got := count(t, rd, tbl2); got != 30 {
				t.Fatalf("Count after restart = %d", got)
			}
			rs := db2.RecoveryStats()
			if rs.Mode != mode || rs.TablesOpened != 1 {
				t.Fatalf("RecoveryStats = %+v", rs)
			}
			if mode == NVM && (rs.InFlightRolledBack != 0 || rs.EntriesUndone != 0) {
				t.Fatalf("clean NVM restart did work: %+v", rs)
			}
			if mode == LogBased && rs.CheckpointLoad == 0 && rs.LogReplay == 0 {
				t.Fatalf("log restart reported no work: %+v", rs)
			}
		})
	}
}

func TestPublicAPINVMStats(t *testing.T) {
	db, err := Open(Config{Mode: NVM, Dir: t.TempDir(), NVMHeapSize: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, _ := db.CreateTable("t", orderCols())
	db.ResetNVMStats()
	tx := db.Begin()
	tx.Insert(tbl, Int(1), Str("a"), Float(1))
	tx.Commit()
	s := db.NVMStats()
	if s.Flushes == 0 || s.Fences == 0 || s.BytesUsed == 0 {
		t.Fatalf("NVMStats = %+v", s)
	}
	// Volatile DB reports zeros.
	vdb, _ := Open(Config{Mode: Volatile})
	defer vdb.Close()
	if vdb.NVMStats() != (NVMStats{}) {
		t.Fatal("volatile NVMStats non-zero")
	}
}

func TestModeString(t *testing.T) {
	if Volatile.String() != "volatile" || LogBased.String() != "log-based" || NVM.String() != "nvm" {
		t.Fatal("Mode.String")
	}
}

func TestPublicAPIGroupByAndMaintenance(t *testing.T) {
	db, err := Open(Config{
		Mode: NVM, Dir: t.TempDir(), NVMHeapSize: 256 << 20,
		MergeThresholdRows: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, _ := db.CreateTable("orders", orderCols(), "id")
	tx := db.Begin()
	for i := int64(0); i < 30; i++ {
		tx.Insert(tbl, Int(i), Str([]string{"a", "b", "c"}[i%3]), Float(float64(i)))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	rd := db.Begin()
	groups, err := rd.GroupByContext(context.Background(), tbl, "customer", "amount")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	var sum float64
	for _, g := range groups {
		if g.Count != 10 {
			t.Fatalf("group %v count %d", g.Key, g.Count)
		}
		sum += g.Sum
	}
	if sum != 29*30/2 {
		t.Fatalf("sum = %g", sum)
	}
	top := TopK(groups, 1)
	if len(top) != 1 {
		t.Fatal("TopK")
	}

	// Maintenance: auto-merge fires (30 >= 25), then scavenge and check.
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	if tbl.DeltaRows() != 0 || tbl.MainRows() != 30 {
		t.Fatalf("auto-merge: main=%d delta=%d", tbl.MainRows(), tbl.DeltaRows())
	}
	if _, err := db.Scavenge(); err != nil {
		t.Fatal(err)
	}
	if err := db.Check(); err != nil {
		t.Fatal(err)
	}
	// Data intact post-maintenance.
	if got := count(t, db.Begin(), tbl); got != 30 {
		t.Fatalf("count = %d", got)
	}
}

func TestPublicAPITimeTravel(t *testing.T) {
	db, err := Open(Config{Mode: NVM, Dir: t.TempDir(), NVMHeapSize: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, _ := db.CreateTable("t", orderCols(), "id")
	for i := int64(0); i < 5; i++ {
		tx := db.Begin()
		tx.Insert(tbl, Int(i), Str("x"), Float(0))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	horizon := db.LastCommitID()
	if horizon != 5 {
		t.Fatalf("horizon = %d", horizon)
	}
	if got := count(t, db.BeginAt(2), tbl); got != 2 {
		t.Fatalf("as-of 2: %d", got)
	}
	if got := count(t, db.BeginAt(horizon), tbl); got != 5 {
		t.Fatalf("as-of horizon: %d", got)
	}
}

func TestPublicAPIJoin(t *testing.T) {
	db, _ := Open(Config{Mode: Volatile})
	defer db.Close()
	users, _ := db.CreateTable("users", []Column{
		{Name: "uid", Type: Int64}, {Name: "name", Type: String},
	}, "uid")
	posts, _ := db.CreateTable("posts", []Column{
		{Name: "pid", Type: Int64}, {Name: "author", Type: Int64},
	})
	tx := db.Begin()
	tx.Insert(users, Int(1), Str("alice"))
	tx.Insert(users, Int(2), Str("bob"))
	tx.Insert(posts, Int(10), Int(1))
	tx.Insert(posts, Int(11), Int(1))
	tx.Insert(posts, Int(12), Int(2))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rd := db.Begin()
	pairs, err := rd.Join(users, "uid", posts, "author")
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	byName := map[string]int{}
	for _, p := range pairs {
		byName[rowOf(t, rd, users, p.Left)[1].S]++
	}
	if byName["alice"] != 2 || byName["bob"] != 1 {
		t.Fatalf("join distribution: %v", byName)
	}
}
