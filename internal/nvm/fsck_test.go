package nvm

import (
	"strings"
	"testing"
)

func TestFsckCleanHeap(t *testing.T) {
	h, _ := testHeap(t, 1<<20)
	var ptrs []PPtr
	for i := 0; i < 10; i++ {
		p, err := h.Alloc(uint64(16 << i))
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	// Free a couple so the free lists are exercised.
	h.Free(ptrs[0])
	h.Free(ptrs[3])
	live := ptrs[1:3]
	live = append(live, ptrs[4:]...)
	if err := h.SetRoot("anchor", live[0], 0); err != nil {
		t.Fatal(err)
	}

	r := h.Fsck(func(yield func(PPtr)) {
		for _, p := range live {
			yield(p)
		}
	})
	if err := r.Err(); err != nil {
		t.Fatalf("clean heap flagged: %v", err)
	}
	if r.Blocks != 10 || r.Reserved != 8 || r.Free != 2 {
		t.Fatalf("miscounted: %+v", r)
	}
	if r.StrandedReserved != 0 || r.StrandedFree != 0 {
		t.Fatalf("phantom strands: %+v", r)
	}
}

func TestFsckDetectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(h *Heap, p PPtr)
		want    string
	}{
		{
			name:    "invalid block state",
			corrupt: func(h *Heap, p PPtr) { h.SetU64(p-blockHeaderSize+8, 0xbad) },
			want:    "invalid state",
		},
		{
			name:    "garbage size tag",
			corrupt: func(h *Heap, p PPtr) { h.SetU64(p-blockHeaderSize, ^uint64(0)) },
			want:    "invalid size tag",
		},
		{
			name: "free list links a reserved block",
			corrupt: func(h *Heap, p PPtr) {
				c := classFor(64)
				h.SetU64(p, h.U64(PPtr(hdrFreeLists+uint64(c)*8)))
				h.SetU64(PPtr(hdrFreeLists+uint64(c)*8), uint64(p-blockHeaderSize))
			},
			want: "want Free",
		},
		{
			name: "root points into the void",
			corrupt: func(h *Heap, p PPtr) {
				if err := h.SetRoot("bogus", p.Add(8), 0); err != nil {
					panic(err)
				}
			},
			want: "not a block payload",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, _ := testHeap(t, 1<<20)
			p, err := h.Alloc(64)
			if err != nil {
				t.Fatal(err)
			}
			tc.corrupt(h, p)
			r := h.Fsck(nil)
			if r.Clean() {
				t.Fatal("corruption not flagged")
			}
			if err := r.Err(); !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("issue %v does not mention %q", err, tc.want)
			}
		})
	}
}

func TestFsckStrandedCounts(t *testing.T) {
	h, _ := testHeap(t, 1<<20)
	a, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	// b is Reserved but not reachable: a crash leak, counted, not flagged.
	r := h.Fsck(func(yield func(PPtr)) { yield(a) })
	if err := r.Err(); err != nil {
		t.Fatalf("stranded blocks must not be violations: %v", err)
	}
	if r.StrandedReserved != 1 {
		t.Fatalf("StrandedReserved = %d, want 1 (block %d)", r.StrandedReserved, b)
	}
}

func TestCheckBlock(t *testing.T) {
	h, _ := testHeap(t, 1<<20)
	p, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.CheckBlock(p, 64); err != nil {
		t.Fatalf("valid block flagged: %v", err)
	}
	if err := h.CheckBlock(p, 65); err == nil {
		t.Fatal("undersized block not flagged")
	}
	if err := h.CheckBlock(0, 8); err == nil {
		t.Fatal("nil pointer not flagged")
	}
	if err := h.CheckBlock(p.Add(4), 8); err == nil {
		t.Fatal("unaligned pointer not flagged")
	}
	if err := h.CheckBlock(PPtr(h.Size()+1024), 8); err == nil {
		t.Fatal("out-of-arena pointer not flagged")
	}
	h.Free(p)
	if err := h.CheckBlock(p, 8); err == nil {
		t.Fatal("freed block not flagged")
	}
}
