package deadlinecheck_test

import (
	"testing"

	"hyrisenv/internal/analysis"
	"hyrisenv/internal/analysis/deadlinecheck"
)

func TestDeadlineCheck(t *testing.T) {
	analysis.Fixture(t, analysis.FixtureDir(),
		[]*analysis.Analyzer{deadlinecheck.Analyzer}, "./server")
}
