package pstruct

import (
	"hyrisenv/internal/nvm"
)

// Blobs are length-prefixed byte strings on NVM, used for dictionary
// values. A blob is written and persisted in full before its pointer is
// published, so a reachable blob is always complete.
//
// Layout: length uint32 | bytes.

// WriteBlob stores b as a persistent blob and returns its pointer.
func WriteBlob(h *nvm.Heap, b []byte) (nvm.PPtr, error) {
	p, err := h.Alloc(4 + uint64(len(b)))
	if err != nil {
		return 0, err
	}
	h.PutU32(p, uint32(len(b)))
	copy(h.Bytes(p.Add(4), uint64(len(b))), b)
	h.Persist(p, 4+uint64(len(b)))
	return p, nil
}

// ReadBlob returns the bytes of the blob at p, aliasing NVM (do not
// mutate). A nil pointer yields a nil slice.
func ReadBlob(h *nvm.Heap, p nvm.PPtr) []byte {
	if p.IsNil() {
		return nil
	}
	n := uint64(h.GetU32(p))
	if h.ReadLatencyEnabled() {
		h.ChargeRead(4 + n)
	}
	return h.Bytes(p.Add(4), n)
}

// BlobLen returns the length of the blob at p without touching its bytes.
func BlobLen(h *nvm.Heap, p nvm.PPtr) uint64 {
	if p.IsNil() {
		return 0
	}
	return uint64(h.GetU32(p))
}
