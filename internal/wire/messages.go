package wire

import (
	"encoding/binary"
	"fmt"
	"time"

	"hyrisenv/internal/storage"
)

// Error codes carried by TypeError frames. They are stable protocol
// values: clients map them back to sentinel errors.
const (
	CodeInternal     uint16 = 1  // unexpected server-side failure
	CodeBadRequest   uint16 = 2  // malformed payload or wrong frame type
	CodeNoSuchTable  uint16 = 3  // table name not in the catalog
	CodeTableExists  uint16 = 4  // CreateTable name collision
	CodeConflict     uint16 = 5  // write-write conflict; retry the txn
	CodeNotActive    uint16 = 6  // txn already committed/aborted
	CodeRowNotFound  uint16 = 7  // row not visible or already dead
	CodeEpochChanged uint16 = 8  // table merged since the txn read it
	CodeReadOnly     uint16 = 9  // write through a time-travel txn
	CodeDeadline     uint16 = 10 // request deadline exceeded
	CodeShuttingDown uint16 = 11 // server is draining; reconnect later
	CodeNoSuchTxn    uint16 = 12 // unknown txn handle on this connection
	CodeBadColumn    uint16 = 13 // predicate/schema names an unknown column
	CodeTooLarge     uint16 = 14 // request or response exceeds frame limit
	CodeOverloaded   uint16 = 15 // admission queue full; back off and retry
	CodeOutOfSpace   uint16 = 16 // persistent heap exhausted; writes fail, reads keep serving
)

// ---------------------------------------------------------------------------
// Payload reader: sticky-error cursor so codecs read fields linearly and
// check once at the end. Corrupt input yields ErrBadPayload, never a panic.

type reader struct {
	b   []byte
	bad bool
}

func (r *reader) fail() {
	r.bad = true
	r.b = nil
}

func (r *reader) take(n int) []byte {
	if r.bad || len(r.b) < n {
		r.fail()
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) str() string {
	n := r.u32()
	if r.bad || uint64(n) > uint64(len(r.b)) {
		r.fail()
		return ""
	}
	return string(r.take(int(n)))
}

func (r *reader) val() storage.Value {
	if r.bad {
		return storage.Value{}
	}
	v, rest, err := storage.DecodeBinary(r.b)
	if err != nil {
		r.fail()
		return storage.Value{}
	}
	r.b = rest
	return v
}

func (r *reader) vals() []storage.Value {
	n := r.u32()
	if r.bad || uint64(n) > uint64(len(r.b)) { // each value is ≥ 1 byte
		r.fail()
		return nil
	}
	out := make([]storage.Value, 0, n)
	for i := uint32(0); i < n && !r.bad; i++ {
		out = append(out, r.val())
	}
	return out
}

// done validates that the payload was fully and exactly consumed.
func (r *reader) done() error {
	if r.bad {
		return ErrBadPayload
	}
	if len(r.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(r.b))
	}
	return nil
}

func appendStr(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func appendVals(b []byte, vals []storage.Value) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(vals)))
	for _, v := range vals {
		b = v.AppendBinary(b)
	}
	return b
}

// ---------------------------------------------------------------------------
// Handshake.

// Hello opens a connection (client → server).
type Hello struct {
	Version uint16
}

// Encode serializes the message.
func (m Hello) Encode() []byte {
	return binary.LittleEndian.AppendUint16(nil, m.Version)
}

// DecodeHello parses a Hello payload.
func DecodeHello(b []byte) (Hello, error) {
	r := &reader{b: b}
	m := Hello{Version: r.u16()}
	return m, r.done()
}

// HelloOK acknowledges the handshake (server → client). Version is the
// negotiated protocol version — min(client, server) — and gates the
// encoding: the version-2 fields are appended only when the negotiated
// version is ≥ 2, so a v1 client sees exactly the 7-byte payload it has
// always parsed.
type HelloOK struct {
	Version    uint16
	Mode       uint8  // durability mode of the serving engine (txn.Mode)
	MaxPayload uint32 // server's frame payload limit

	// MaxInFlight (v2+) is the server's per-connection pipeline depth:
	// the most requests a client should have outstanding on one
	// connection. 0 means the server did not advertise a depth (treat
	// as 1: strictly request/response).
	MaxInFlight uint32
}

// Encode serializes the message, version-gating the v2 fields.
func (m HelloOK) Encode() []byte {
	b := binary.LittleEndian.AppendUint16(nil, m.Version)
	b = append(b, m.Mode)
	b = binary.LittleEndian.AppendUint32(b, m.MaxPayload)
	if m.Version >= 2 {
		b = binary.LittleEndian.AppendUint32(b, m.MaxInFlight)
	}
	return b
}

// DecodeHelloOK parses a HelloOK payload. The negotiated version inside
// the payload gates which fields follow.
func DecodeHelloOK(b []byte) (HelloOK, error) {
	r := &reader{b: b}
	m := HelloOK{Version: r.u16(), Mode: r.u8(), MaxPayload: r.u32()}
	if m.Version >= 2 {
		m.MaxInFlight = r.u32()
	}
	return m, r.done()
}

// ---------------------------------------------------------------------------
// Transactions.

// BeginReq starts a transaction. ReadOnly + AtCID ≠ 0 requests a
// time-travel snapshot at that commit ID.
type BeginReq struct {
	ReadOnly bool
	AtCID    uint64
}

// Encode serializes the message.
func (m BeginReq) Encode() []byte {
	b := make([]byte, 0, 9)
	if m.ReadOnly {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return binary.LittleEndian.AppendUint64(b, m.AtCID)
}

// DecodeBeginReq parses a BeginReq payload.
func DecodeBeginReq(b []byte) (BeginReq, error) {
	r := &reader{b: b}
	m := BeginReq{ReadOnly: r.u8() != 0, AtCID: r.u64()}
	return m, r.done()
}

// BeginOK returns the server-side transaction handle. The handle is
// scoped to the connection that created it.
type BeginOK struct {
	Txn         uint64
	SnapshotCID uint64
}

// Encode serializes the message.
func (m BeginOK) Encode() []byte {
	b := binary.LittleEndian.AppendUint64(nil, m.Txn)
	return binary.LittleEndian.AppendUint64(b, m.SnapshotCID)
}

// DecodeBeginOK parses a BeginOK payload.
func DecodeBeginOK(b []byte) (BeginOK, error) {
	r := &reader{b: b}
	m := BeginOK{Txn: r.u64(), SnapshotCID: r.u64()}
	return m, r.done()
}

// TxnReq addresses an open transaction (Commit, Abort).
type TxnReq struct {
	Txn uint64
}

// Encode serializes the message.
func (m TxnReq) Encode() []byte {
	return binary.LittleEndian.AppendUint64(nil, m.Txn)
}

// DecodeTxnReq parses a TxnReq payload.
func DecodeTxnReq(b []byte) (TxnReq, error) {
	r := &reader{b: b}
	m := TxnReq{Txn: r.u64()}
	return m, r.done()
}

// ---------------------------------------------------------------------------
// Writes.

// InsertReq appends a row. Txn 0 is invalid for writes (writes require
// an explicit transaction).
type InsertReq struct {
	Txn   uint64
	Table string
	Vals  []storage.Value
}

// Encode serializes the message.
func (m InsertReq) Encode() []byte {
	b := binary.LittleEndian.AppendUint64(nil, m.Txn)
	b = appendStr(b, m.Table)
	return appendVals(b, m.Vals)
}

// DecodeInsertReq parses an InsertReq payload.
func DecodeInsertReq(b []byte) (InsertReq, error) {
	r := &reader{b: b}
	m := InsertReq{Txn: r.u64(), Table: r.str(), Vals: r.vals()}
	return m, r.done()
}

// UpdateReq replaces a visible row with new values.
type UpdateReq struct {
	Txn   uint64
	Table string
	Row   uint64
	Vals  []storage.Value
}

// Encode serializes the message.
func (m UpdateReq) Encode() []byte {
	b := binary.LittleEndian.AppendUint64(nil, m.Txn)
	b = appendStr(b, m.Table)
	b = binary.LittleEndian.AppendUint64(b, m.Row)
	return appendVals(b, m.Vals)
}

// DecodeUpdateReq parses an UpdateReq payload.
func DecodeUpdateReq(b []byte) (UpdateReq, error) {
	r := &reader{b: b}
	m := UpdateReq{Txn: r.u64(), Table: r.str(), Row: r.u64(), Vals: r.vals()}
	return m, r.done()
}

// DeleteReq invalidates a visible row.
type DeleteReq struct {
	Txn   uint64
	Table string
	Row   uint64
}

// Encode serializes the message.
func (m DeleteReq) Encode() []byte {
	b := binary.LittleEndian.AppendUint64(nil, m.Txn)
	b = appendStr(b, m.Table)
	return binary.LittleEndian.AppendUint64(b, m.Row)
}

// DecodeDeleteReq parses a DeleteReq payload.
func DecodeDeleteReq(b []byte) (DeleteReq, error) {
	r := &reader{b: b}
	m := DeleteReq{Txn: r.u64(), Table: r.str(), Row: r.u64()}
	return m, r.done()
}

// RowIDResp returns the physical row ID of an insert/update.
type RowIDResp struct {
	Row uint64
}

// Encode serializes the message.
func (m RowIDResp) Encode() []byte {
	return binary.LittleEndian.AppendUint64(nil, m.Row)
}

// DecodeRowIDResp parses a RowIDResp payload.
func DecodeRowIDResp(b []byte) (RowIDResp, error) {
	r := &reader{b: b}
	m := RowIDResp{Row: r.u64()}
	return m, r.done()
}

// ---------------------------------------------------------------------------
// Reads. Txn 0 means "auto": the server runs the read in a fresh
// read-only snapshot at the current commit horizon, making the request
// idempotent and safe for the client to retry on reconnect.

// RowReq materializes all columns of one row.
type RowReq struct {
	Txn   uint64
	Table string
	Row   uint64
}

// Encode serializes the message.
func (m RowReq) Encode() []byte {
	b := binary.LittleEndian.AppendUint64(nil, m.Txn)
	b = appendStr(b, m.Table)
	return binary.LittleEndian.AppendUint64(b, m.Row)
}

// DecodeRowReq parses a RowReq payload.
func DecodeRowReq(b []byte) (RowReq, error) {
	r := &reader{b: b}
	m := RowReq{Txn: r.u64(), Table: r.str(), Row: r.u64()}
	return m, r.done()
}

// RowResp carries one materialized row.
type RowResp struct {
	Vals []storage.Value
}

// Encode serializes the message.
func (m RowResp) Encode() []byte { return appendVals(nil, m.Vals) }

// DecodeRowResp parses a RowResp payload.
func DecodeRowResp(b []byte) (RowResp, error) {
	r := &reader{b: b}
	m := RowResp{Vals: r.vals()}
	return m, r.done()
}

// Pred is a single-column predicate.
type Pred struct {
	Col string
	Op  uint8 // query.Op numeric value
	Val storage.Value
}

// SelectReq scans a table for rows matching all predicates (empty =
// full visible scan). Also used for TypeCount.
type SelectReq struct {
	Txn   uint64
	Table string
	Preds []Pred
}

// Encode serializes the message.
func (m SelectReq) Encode() []byte {
	b := binary.LittleEndian.AppendUint64(nil, m.Txn)
	b = appendStr(b, m.Table)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Preds)))
	for _, p := range m.Preds {
		b = appendStr(b, p.Col)
		b = append(b, p.Op)
		b = p.Val.AppendBinary(b)
	}
	return b
}

// DecodeSelectReq parses a SelectReq payload.
func DecodeSelectReq(b []byte) (SelectReq, error) {
	r := &reader{b: b}
	m := SelectReq{Txn: r.u64(), Table: r.str()}
	n := r.u32()
	if r.bad || uint64(n) > uint64(len(r.b)) {
		return m, ErrBadPayload
	}
	m.Preds = make([]Pred, 0, n)
	for i := uint32(0); i < n && !r.bad; i++ {
		m.Preds = append(m.Preds, Pred{Col: r.str(), Op: r.u8(), Val: r.val()})
	}
	return m, r.done()
}

// RangeReq selects rows whose column falls in [Lo, Hi).
type RangeReq struct {
	Txn    uint64
	Table  string
	Col    string
	Lo, Hi storage.Value
}

// Encode serializes the message.
func (m RangeReq) Encode() []byte {
	b := binary.LittleEndian.AppendUint64(nil, m.Txn)
	b = appendStr(b, m.Table)
	b = appendStr(b, m.Col)
	b = m.Lo.AppendBinary(b)
	return m.Hi.AppendBinary(b)
}

// DecodeRangeReq parses a RangeReq payload.
func DecodeRangeReq(b []byte) (RangeReq, error) {
	r := &reader{b: b}
	m := RangeReq{Txn: r.u64(), Table: r.str(), Col: r.str(), Lo: r.val(), Hi: r.val()}
	return m, r.done()
}

// RowIDsResp carries a result row-ID set.
type RowIDsResp struct {
	Rows []uint64
}

// Encode serializes the message.
func (m RowIDsResp) Encode() []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(len(m.Rows)))
	for _, r := range m.Rows {
		b = binary.LittleEndian.AppendUint64(b, r)
	}
	return b
}

// DecodeRowIDsResp parses a RowIDsResp payload.
func DecodeRowIDsResp(b []byte) (RowIDsResp, error) {
	r := &reader{b: b}
	n := r.u32()
	if r.bad || uint64(n)*8 > uint64(len(r.b)) {
		return RowIDsResp{}, ErrBadPayload
	}
	m := RowIDsResp{Rows: make([]uint64, 0, n)}
	for i := uint32(0); i < n; i++ {
		m.Rows = append(m.Rows, r.u64())
	}
	return m, r.done()
}

// CountResp returns a row count.
type CountResp struct {
	N uint64
}

// Encode serializes the message.
func (m CountResp) Encode() []byte {
	return binary.LittleEndian.AppendUint64(nil, m.N)
}

// DecodeCountResp parses a CountResp payload.
func DecodeCountResp(b []byte) (CountResp, error) {
	r := &reader{b: b}
	m := CountResp{N: r.u64()}
	return m, r.done()
}

// ---------------------------------------------------------------------------
// DDL and introspection.

// ColumnDef mirrors storage.ColumnDef on the wire.
type ColumnDef struct {
	Name string
	Type uint8 // storage.ColType
}

// CreateTableReq creates a table.
type CreateTableReq struct {
	Name    string
	Cols    []ColumnDef
	Indexed []string
}

// Encode serializes the message.
func (m CreateTableReq) Encode() []byte {
	b := appendStr(nil, m.Name)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Cols)))
	for _, c := range m.Cols {
		b = appendStr(b, c.Name)
		b = append(b, c.Type)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Indexed)))
	for _, s := range m.Indexed {
		b = appendStr(b, s)
	}
	return b
}

// DecodeCreateTableReq parses a CreateTableReq payload.
func DecodeCreateTableReq(b []byte) (CreateTableReq, error) {
	r := &reader{b: b}
	m := CreateTableReq{Name: r.str()}
	nc := r.u32()
	if r.bad || uint64(nc) > uint64(len(r.b)) {
		return m, ErrBadPayload
	}
	m.Cols = make([]ColumnDef, 0, nc)
	for i := uint32(0); i < nc && !r.bad; i++ {
		m.Cols = append(m.Cols, ColumnDef{Name: r.str(), Type: r.u8()})
	}
	ni := r.u32()
	if r.bad || uint64(ni) > uint64(len(r.b)) {
		return m, ErrBadPayload
	}
	m.Indexed = make([]string, 0, ni)
	for i := uint32(0); i < ni && !r.bad; i++ {
		m.Indexed = append(m.Indexed, r.str())
	}
	return m, r.done()
}

// TableStat describes one table in a TablesResp.
type TableStat struct {
	Name      string
	ID        uint32
	MainRows  uint64
	DeltaRows uint64
	Rows      uint64
}

// TablesResp lists the catalog.
type TablesResp struct {
	Tables []TableStat
}

// Encode serializes the message.
func (m TablesResp) Encode() []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(len(m.Tables)))
	for _, t := range m.Tables {
		b = appendStr(b, t.Name)
		b = binary.LittleEndian.AppendUint32(b, t.ID)
		b = binary.LittleEndian.AppendUint64(b, t.MainRows)
		b = binary.LittleEndian.AppendUint64(b, t.DeltaRows)
		b = binary.LittleEndian.AppendUint64(b, t.Rows)
	}
	return b
}

// DecodeTablesResp parses a TablesResp payload.
func DecodeTablesResp(b []byte) (TablesResp, error) {
	r := &reader{b: b}
	n := r.u32()
	if r.bad || uint64(n) > uint64(len(r.b)) {
		return TablesResp{}, ErrBadPayload
	}
	m := TablesResp{Tables: make([]TableStat, 0, n)}
	for i := uint32(0); i < n && !r.bad; i++ {
		m.Tables = append(m.Tables, TableStat{
			Name: r.str(), ID: r.u32(),
			MainRows: r.u64(), DeltaRows: r.u64(), Rows: r.u64(),
		})
	}
	return m, r.done()
}

// StatsResp reports recovery and NVM statistics of the serving engine —
// the introspection surface the restart experiments read over the wire.
type StatsResp struct {
	Mode           uint8
	Uptime         time.Duration
	Recovery       time.Duration
	TablesOpened   uint32
	CheckpointLoad time.Duration
	LogReplay      time.Duration
	IndexRebuild   time.Duration
	ReplayRecords  uint32
	RolledBack     uint32
	EntriesUndone  uint32
	NVMFlushes     uint64
	NVMFences      uint64
	NVMBytesUsed   uint64
}

// Encode serializes the message.
func (m StatsResp) Encode() []byte {
	b := []byte{m.Mode}
	b = binary.LittleEndian.AppendUint64(b, uint64(m.Uptime))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.Recovery))
	b = binary.LittleEndian.AppendUint32(b, m.TablesOpened)
	b = binary.LittleEndian.AppendUint64(b, uint64(m.CheckpointLoad))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.LogReplay))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.IndexRebuild))
	b = binary.LittleEndian.AppendUint32(b, m.ReplayRecords)
	b = binary.LittleEndian.AppendUint32(b, m.RolledBack)
	b = binary.LittleEndian.AppendUint32(b, m.EntriesUndone)
	b = binary.LittleEndian.AppendUint64(b, m.NVMFlushes)
	b = binary.LittleEndian.AppendUint64(b, m.NVMFences)
	return binary.LittleEndian.AppendUint64(b, m.NVMBytesUsed)
}

// DecodeStatsResp parses a StatsResp payload.
func DecodeStatsResp(b []byte) (StatsResp, error) {
	r := &reader{b: b}
	m := StatsResp{
		Mode:           r.u8(),
		Uptime:         time.Duration(r.u64()),
		Recovery:       time.Duration(r.u64()),
		TablesOpened:   r.u32(),
		CheckpointLoad: time.Duration(r.u64()),
		LogReplay:      time.Duration(r.u64()),
		IndexRebuild:   time.Duration(r.u64()),
		ReplayRecords:  r.u32(),
		RolledBack:     r.u32(),
		EntriesUndone:  r.u32(),
		NVMFlushes:     r.u64(),
		NVMFences:      r.u64(),
		NVMBytesUsed:   r.u64(),
	}
	return m, r.done()
}

// ---------------------------------------------------------------------------
// Errors.

// ErrorResp is the structured per-request error reply: the connection
// stays usable, only the failed request is affected.
type ErrorResp struct {
	Code uint16
	Msg  string
}

// Encode serializes the message.
func (m ErrorResp) Encode() []byte {
	b := binary.LittleEndian.AppendUint16(nil, m.Code)
	return appendStr(b, m.Msg)
}

// DecodeErrorResp parses an ErrorResp payload.
func DecodeErrorResp(b []byte) (ErrorResp, error) {
	r := &reader{b: b}
	m := ErrorResp{Code: r.u16(), Msg: r.str()}
	return m, r.done()
}
