// Package client is the Go client for a hyrisenv database served over
// TCP by hyrise-nvd (or hyrisenv.DB.Serve). It speaks the internal/wire
// protocol and provides:
//
//   - Dial: a pooled client. Connections are created lazily up to the
//     pool size, health-checked with a ping when they have been idle,
//     and re-dialed transparently when the server restarts.
//   - Auto-commit reads (Select, Count, ScanAll, Row, SelectRange): each
//     runs in a fresh read-only snapshot on the server; because they are
//     idempotent the client retries them once on a fresh connection
//     after a network failure — which is what makes a server restart
//     nearly invisible to read traffic.
//   - Begin/BeginAt: a typed Tx mirroring hyrisenv.Tx, pinned to one
//     pooled connection for its lifetime.
//
// Every request-path method has a context-accepting variant; the
// context deadline is propagated to the server in the frame header, so
// an expired request comes back as a structured error
// (context.DeadlineExceeded), not a hung connection.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"hyrisenv"
	"hyrisenv/internal/backoff"
	"hyrisenv/internal/wire"
)

// Errors mapped from server error frames. Request errors leave the
// connection usable; only network failures discard it.
var (
	ErrConflict     = hyrisenvError("write-write conflict")
	ErrNotActive    = hyrisenvError("transaction is not active")
	ErrRowNotFound  = hyrisenvError("row not visible or already dead")
	ErrEpochChanged = hyrisenvError("table merged since this transaction read it")
	ErrReadOnly     = hyrisenvError("transaction is read-only")
	ErrNoSuchTable  = hyrisenvError("no such table")
	ErrTableExists  = hyrisenvError("table already exists")
	ErrNoSuchTxn    = hyrisenvError("no such transaction on this connection")
	ErrBadColumn    = hyrisenvError("unknown column")
	ErrShuttingDown = hyrisenvError("server is shutting down")
	ErrClosed       = hyrisenvError("client is closed")
	ErrTxDone       = hyrisenvError("transaction already finished")
)

func hyrisenvError(msg string) error { return errors.New("client: " + msg) }

// ServerError carries an error frame the client has no sentinel for.
type ServerError struct {
	Code uint16
	Msg  string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("client: server error %d: %s", e.Code, e.Msg)
}

func errFromResp(e wire.ErrorResp) error {
	var sentinel error
	switch e.Code {
	case wire.CodeConflict:
		sentinel = ErrConflict
	case wire.CodeNotActive:
		sentinel = ErrNotActive
	case wire.CodeRowNotFound:
		sentinel = ErrRowNotFound
	case wire.CodeEpochChanged:
		sentinel = ErrEpochChanged
	case wire.CodeReadOnly:
		sentinel = ErrReadOnly
	case wire.CodeNoSuchTable:
		sentinel = ErrNoSuchTable
	case wire.CodeTableExists:
		sentinel = ErrTableExists
	case wire.CodeNoSuchTxn:
		sentinel = ErrNoSuchTxn
	case wire.CodeBadColumn:
		sentinel = ErrBadColumn
	case wire.CodeShuttingDown:
		sentinel = ErrShuttingDown
	case wire.CodeDeadline:
		// Deadline errors surface as the standard context error so
		// callers can use one errors.Is check for local and remote
		// expiry.
		return fmt.Errorf("%w (server: %s)", context.DeadlineExceeded, e.Msg)
	case wire.CodeInternal, wire.CodeBadRequest, wire.CodeTooLarge:
		// No sentinel: these indicate a bug (ours or the server's), not
		// a condition callers branch on. Listed explicitly so the switch
		// stays exhaustive and a new code cannot silently land here.
		return &ServerError{Code: e.Code, Msg: e.Msg}
	default:
		// Unknown code from a newer server.
		return &ServerError{Code: e.Code, Msg: e.Msg}
	}
	return fmt.Errorf("%w: %s", sentinel, e.Msg)
}

// Options tunes Dial. The zero value picks sensible defaults.
type Options struct {
	// PoolSize caps pooled connections (default 4). A Tx pins one
	// connection for its lifetime, so size the pool for the expected
	// write concurrency.
	PoolSize int
	// DialTimeout bounds establishing one TCP connection + handshake
	// (default 5 s).
	DialTimeout time.Duration
	// RequestTimeout is the default per-request deadline applied by the
	// non-context methods (default 30 s; negative disables).
	RequestTimeout time.Duration
	// HealthCheckAfter pings a pooled connection that has been idle
	// longer than this before reuse (default 30 s; negative disables).
	HealthCheckAfter time.Duration
	// MaxFrame bounds response payloads (default wire.DefaultMaxPayload).
	MaxFrame uint32
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.PoolSize <= 0 {
		out.PoolSize = 4
	}
	if out.DialTimeout == 0 {
		out.DialTimeout = 5 * time.Second
	}
	if out.RequestTimeout == 0 {
		out.RequestTimeout = 30 * time.Second
	}
	if out.HealthCheckAfter == 0 {
		out.HealthCheckAfter = 30 * time.Second
	}
	if out.MaxFrame == 0 {
		out.MaxFrame = wire.DefaultMaxPayload
	}
	return out
}

// Client is a pooled connection to one server. It is safe for
// concurrent use.
type Client struct {
	addr string
	opts Options
	mode hyrisenv.Mode

	sem chan struct{} // capacity = PoolSize; one token per live checkout

	mu     sync.Mutex
	idle   []*wconn
	closed bool
}

// Dial connects to a hyrise-nvd server and verifies the protocol
// handshake on one connection (which is then pooled).
func Dial(addr string, opts Options) (*Client, error) {
	c := &Client{
		addr: addr,
		opts: opts.withDefaults(),
	}
	c.sem = make(chan struct{}, c.opts.PoolSize)
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.DialTimeout)
	defer cancel()
	wc, err := c.dial(ctx)
	if err != nil {
		return nil, err
	}
	c.mode = hyrisenv.Mode(wc.serverMode)
	c.mu.Lock()
	c.idle = append(c.idle, wc)
	c.mu.Unlock()
	return c, nil
}

// Mode reports the durability mode of the serving engine, learned in
// the handshake.
func (c *Client) Mode() hyrisenv.Mode { return c.mode }

// Addr returns the server address this client dials.
func (c *Client) Addr() string { return c.addr }

// Close closes all pooled connections. In-flight requests fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, wc := range idle {
		wc.close()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Pool internals.

// wconn is one established, handshaken connection.
type wconn struct {
	nc         net.Conn
	br         *bufio.Reader
	bw         *bufio.Writer
	reqID      uint64
	serverMode uint8
	maxFrame   uint32
	lastUsed   time.Time
	broken     bool
}

func (w *wconn) close() {
	w.broken = true
	w.nc.Close()
}

// dial establishes and handshakes one connection (no pool accounting).
func (c *Client) dial(ctx context.Context) (*wconn, error) {
	d := net.Dialer{}
	nc, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", c.addr, err)
	}
	wc := &wconn{
		nc:       nc,
		br:       bufio.NewReader(nc),
		bw:       bufio.NewWriter(nc),
		maxFrame: c.opts.MaxFrame,
		lastUsed: time.Now(),
	}
	f, err := wc.roundTrip(ctx, wire.TypeHello, wire.Hello{Version: wire.Version}.Encode())
	if err != nil {
		nc.Close()
		return nil, err
	}
	if f.Type != wire.TypeHelloOK {
		nc.Close()
		return nil, fmt.Errorf("client: unexpected handshake reply %s", f.Type)
	}
	ok, err := wire.DecodeHelloOK(f.Payload)
	if err != nil {
		nc.Close()
		return nil, err
	}
	if ok.Version != wire.Version {
		nc.Close()
		return nil, fmt.Errorf("client: server speaks protocol %d, want %d", ok.Version, wire.Version)
	}
	wc.serverMode = ok.Mode
	return wc, nil
}

// acquire checks a connection out of the pool, dialing a new one if no
// idle connection is available. Blocks when PoolSize connections are
// already checked out.
func (c *Client) acquire(ctx context.Context) (*wconn, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	select {
	case c.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	// Token held from here on; every return path must either hand the
	// conn to the caller or release the token.
	for {
		c.mu.Lock()
		var wc *wconn
		if n := len(c.idle); n > 0 {
			wc = c.idle[n-1]
			c.idle = c.idle[:n-1]
		}
		c.mu.Unlock()
		if wc == nil {
			break
		}
		if h := c.opts.HealthCheckAfter; h > 0 && time.Since(wc.lastUsed) > h {
			// Bound the health check tightly: a dead server must not eat
			// the whole request deadline before we try a fresh dial.
			pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			_, err := wc.roundTrip(pctx, wire.TypePing, nil)
			cancel()
			if err != nil {
				wc.close() // stale pooled conn (e.g. server restarted); try the next
				continue
			}
		}
		return wc, nil
	}
	wc, err := c.dial(ctx)
	if err != nil {
		<-c.sem
		return nil, err
	}
	return wc, nil
}

// release returns a checked-out connection to the pool.
func (c *Client) release(wc *wconn) {
	defer func() { <-c.sem }()
	if wc.broken {
		wc.nc.Close()
		return
	}
	wc.lastUsed = time.Now()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		wc.close()
		return
	}
	c.idle = append(c.idle, wc)
	c.mu.Unlock()
}

// roundTrip sends one request and reads its response, applying the
// context deadline both locally (socket deadlines) and remotely (frame
// header timeout). Any network failure marks the connection broken.
func (w *wconn) roundTrip(ctx context.Context, t wire.Type, payload []byte) (wire.Frame, error) {
	if w.broken {
		return wire.Frame{}, net.ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return wire.Frame{}, err
	}
	w.reqID++
	f := wire.Frame{Type: t, ReqID: w.reqID, Payload: payload}
	if dl, ok := ctx.Deadline(); ok {
		remain := time.Until(dl)
		if remain <= 0 {
			return wire.Frame{}, context.DeadlineExceeded
		}
		if ms := remain.Milliseconds(); ms > 0 {
			f.TimeoutMs = uint32(min(ms, int64(^uint32(0))))
		} else {
			f.TimeoutMs = 1
		}
		w.nc.SetDeadline(dl) //nolint:errcheck
	} else {
		w.nc.SetDeadline(time.Time{}) //nolint:errcheck
	}
	if err := wire.WriteFrame(w.bw, f); err != nil {
		w.broken = true
		return wire.Frame{}, err
	}
	if err := w.bw.Flush(); err != nil {
		w.broken = true
		return wire.Frame{}, err
	}
	for {
		resp, err := wire.ReadFrame(w.br, w.maxFrame)
		if err != nil {
			w.broken = true
			if ne := (net.Error)(nil); errors.As(err, &ne) && ne.Timeout() && ctx.Err() != nil {
				return wire.Frame{}, ctx.Err()
			}
			return wire.Frame{}, err
		}
		if resp.ReqID != f.ReqID {
			// A response for a request we gave up on earlier; the
			// protocol is strictly serial per connection, so skip it.
			continue
		}
		return resp, nil
	}
}

// do runs one request on a pooled connection. Idempotent requests
// (retriable=true) are retried once on a fresh connection after a
// network error — the reconnect path that rides out a server restart.
func (c *Client) do(ctx context.Context, t wire.Type, payload []byte, retriable bool) (wire.Frame, error) {
	var lastErr error
	attempts := 1
	if retriable {
		attempts = 2
	}
	for i := 0; i < attempts; i++ {
		wc, err := c.acquire(ctx)
		if err != nil {
			return wire.Frame{}, err
		}
		f, err := wc.roundTrip(ctx, t, payload)
		c.release(wc)
		if err == nil {
			if f.Type == wire.TypeError {
				e, derr := wire.DecodeErrorResp(f.Payload)
				if derr != nil {
					return wire.Frame{}, derr
				}
				return wire.Frame{}, errFromResp(e)
			}
			return f, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return wire.Frame{}, err
		}
		// A network failure usually means the server went away; every
		// pooled connection is equally dead, so drop them all and let
		// the retry dial fresh — after a jittered backoff, so a fleet of
		// clients doesn't hammer a restarting server in lockstep.
		c.purgeIdle()
		if i+1 < attempts {
			if serr := backoff.Sleep(ctx, reconnectBackoff, i); serr != nil {
				return wire.Frame{}, lastErr
			}
		}
	}
	return wire.Frame{}, lastErr
}

// reconnectBackoff paces retries after network failures: capped
// exponential with jitter (see internal/backoff).
var reconnectBackoff = backoff.Policy{Base: 2 * time.Millisecond, Max: 100 * time.Millisecond}

// purgeIdle closes every idle pooled connection.
func (c *Client) purgeIdle() {
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, wc := range idle {
		wc.close()
	}
}

// reqCtx builds the default context for the non-context methods.
func (c *Client) reqCtx() (context.Context, context.CancelFunc) {
	if c.opts.RequestTimeout > 0 {
		return context.WithTimeout(context.Background(), c.opts.RequestTimeout)
	}
	return context.Background(), func() {}
}

// ---------------------------------------------------------------------------
// Connection-level API.

// Ping checks server liveness over one pooled connection.
func (c *Client) Ping() error {
	ctx, cancel := c.reqCtx()
	defer cancel()
	return c.PingContext(ctx)
}

// PingContext is Ping with a caller-supplied context.
func (c *Client) PingContext(ctx context.Context) error {
	_, err := c.do(ctx, wire.TypePing, nil, true)
	return err
}

// CreateTable creates a table on the server; indexed names columns to
// maintain secondary indexes on.
func (c *Client) CreateTable(name string, cols []hyrisenv.Column, indexed ...string) error {
	ctx, cancel := c.reqCtx()
	defer cancel()
	return c.CreateTableContext(ctx, name, cols, indexed...)
}

// CreateTableContext is CreateTable with a caller-supplied context.
func (c *Client) CreateTableContext(ctx context.Context, name string, cols []hyrisenv.Column, indexed ...string) error {
	req := wire.CreateTableReq{Name: name, Indexed: indexed}
	for _, col := range cols {
		req.Cols = append(req.Cols, wire.ColumnDef{Name: col.Name, Type: uint8(col.Type)})
	}
	_, err := c.do(ctx, wire.TypeCreateTable, req.Encode(), false)
	return err
}

// TableStat describes one table on the server.
type TableStat struct {
	Name      string
	ID        uint32
	MainRows  uint64
	DeltaRows uint64
	Rows      uint64
}

// Tables lists the server catalog.
func (c *Client) Tables() ([]TableStat, error) {
	ctx, cancel := c.reqCtx()
	defer cancel()
	return c.TablesContext(ctx)
}

// TablesContext is Tables with a caller-supplied context.
func (c *Client) TablesContext(ctx context.Context) ([]TableStat, error) {
	f, err := c.do(ctx, wire.TypeTables, nil, true)
	if err != nil {
		return nil, err
	}
	resp, err := wire.DecodeTablesResp(f.Payload)
	if err != nil {
		return nil, err
	}
	out := make([]TableStat, len(resp.Tables))
	for i, t := range resp.Tables {
		out[i] = TableStat(t)
	}
	return out, nil
}

// Stats reports the server's recovery and NVM statistics.
type Stats struct {
	Mode           hyrisenv.Mode
	Uptime         time.Duration
	Recovery       time.Duration // cost of the server's last engine open
	TablesOpened   int
	CheckpointLoad time.Duration
	LogReplay      time.Duration
	IndexRebuild   time.Duration
	ReplayRecords  int
	RolledBack     int
	EntriesUndone  int
	NVMFlushes     uint64
	NVMFences      uint64
	NVMBytesUsed   uint64
}

// Stats fetches server statistics.
func (c *Client) Stats() (Stats, error) {
	ctx, cancel := c.reqCtx()
	defer cancel()
	return c.StatsContext(ctx)
}

// StatsContext is Stats with a caller-supplied context.
func (c *Client) StatsContext(ctx context.Context) (Stats, error) {
	f, err := c.do(ctx, wire.TypeStats, nil, true)
	if err != nil {
		return Stats{}, err
	}
	resp, err := wire.DecodeStatsResp(f.Payload)
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		Mode:           hyrisenv.Mode(resp.Mode),
		Uptime:         resp.Uptime,
		Recovery:       resp.Recovery,
		TablesOpened:   int(resp.TablesOpened),
		CheckpointLoad: resp.CheckpointLoad,
		LogReplay:      resp.LogReplay,
		IndexRebuild:   resp.IndexRebuild,
		ReplayRecords:  int(resp.ReplayRecords),
		RolledBack:     int(resp.RolledBack),
		EntriesUndone:  int(resp.EntriesUndone),
		NVMFlushes:     resp.NVMFlushes,
		NVMFences:      resp.NVMFences,
		NVMBytesUsed:   resp.NVMBytesUsed,
	}, nil
}

// ---------------------------------------------------------------------------
// Auto-commit reads. Each runs in a fresh read-only snapshot server-side
// and is retried once on a new connection after a network failure.

func wirePreds(preds []hyrisenv.Pred) []wire.Pred {
	out := make([]wire.Pred, len(preds))
	for i, p := range preds {
		out[i] = wire.Pred{Col: p.Col, Op: uint8(p.Op), Val: p.Val}
	}
	return out
}

// Select returns the row IDs satisfying all predicates.
func (c *Client) Select(table string, preds ...hyrisenv.Pred) ([]uint64, error) {
	ctx, cancel := c.reqCtx()
	defer cancel()
	return c.SelectContext(ctx, table, preds...)
}

// SelectContext is Select with a caller-supplied context.
func (c *Client) SelectContext(ctx context.Context, table string, preds ...hyrisenv.Pred) ([]uint64, error) {
	return c.selectTxn(ctx, 0, table, preds, true)
}

func (c *Client) selectTxn(ctx context.Context, txid uint64, table string, preds []hyrisenv.Pred, retriable bool) ([]uint64, error) {
	req := wire.SelectReq{Txn: txid, Table: table, Preds: wirePreds(preds)}
	f, err := c.do(ctx, wire.TypeSelect, req.Encode(), retriable)
	if err != nil {
		return nil, err
	}
	resp, err := wire.DecodeRowIDsResp(f.Payload)
	if err != nil {
		return nil, err
	}
	return resp.Rows, nil
}

// ScanAll returns every visible row ID.
func (c *Client) ScanAll(table string) ([]uint64, error) {
	return c.Select(table)
}

// ScanAllContext is ScanAll with a caller-supplied context.
func (c *Client) ScanAllContext(ctx context.Context, table string) ([]uint64, error) {
	return c.SelectContext(ctx, table)
}

// Count returns the number of rows satisfying all predicates.
func (c *Client) Count(table string, preds ...hyrisenv.Pred) (int, error) {
	ctx, cancel := c.reqCtx()
	defer cancel()
	return c.CountContext(ctx, table, preds...)
}

// CountContext is Count with a caller-supplied context.
func (c *Client) CountContext(ctx context.Context, table string, preds ...hyrisenv.Pred) (int, error) {
	return c.countTxn(ctx, 0, table, preds, true)
}

func (c *Client) countTxn(ctx context.Context, txid uint64, table string, preds []hyrisenv.Pred, retriable bool) (int, error) {
	req := wire.SelectReq{Txn: txid, Table: table, Preds: wirePreds(preds)}
	f, err := c.do(ctx, wire.TypeCount, req.Encode(), retriable)
	if err != nil {
		return 0, err
	}
	resp, err := wire.DecodeCountResp(f.Payload)
	if err != nil {
		return 0, err
	}
	return int(resp.N), nil
}

// SelectRange returns rows whose named column falls in [lo, hi).
func (c *Client) SelectRange(table, col string, lo, hi hyrisenv.Value) ([]uint64, error) {
	ctx, cancel := c.reqCtx()
	defer cancel()
	return c.SelectRangeContext(ctx, table, col, lo, hi)
}

// SelectRangeContext is SelectRange with a caller-supplied context.
func (c *Client) SelectRangeContext(ctx context.Context, table, col string, lo, hi hyrisenv.Value) ([]uint64, error) {
	return c.rangeTxn(ctx, 0, table, col, lo, hi, true)
}

func (c *Client) rangeTxn(ctx context.Context, txid uint64, table, col string, lo, hi hyrisenv.Value, retriable bool) ([]uint64, error) {
	req := wire.RangeReq{Txn: txid, Table: table, Col: col, Lo: lo, Hi: hi}
	f, err := c.do(ctx, wire.TypeRange, req.Encode(), retriable)
	if err != nil {
		return nil, err
	}
	resp, err := wire.DecodeRowIDsResp(f.Payload)
	if err != nil {
		return nil, err
	}
	return resp.Rows, nil
}

// Row materializes all columns of a row.
func (c *Client) Row(table string, row uint64) ([]hyrisenv.Value, error) {
	ctx, cancel := c.reqCtx()
	defer cancel()
	return c.RowContext(ctx, table, row)
}

// RowContext is Row with a caller-supplied context.
func (c *Client) RowContext(ctx context.Context, table string, row uint64) ([]hyrisenv.Value, error) {
	return c.rowTxn(ctx, 0, table, row, true)
}

func (c *Client) rowTxn(ctx context.Context, txid uint64, table string, row uint64, retriable bool) ([]hyrisenv.Value, error) {
	req := wire.RowReq{Txn: txid, Table: table, Row: row}
	f, err := c.do(ctx, wire.TypeGetRow, req.Encode(), retriable)
	if err != nil {
		return nil, err
	}
	resp, err := wire.DecodeRowResp(f.Payload)
	if err != nil {
		return nil, err
	}
	return resp.Vals, nil
}
