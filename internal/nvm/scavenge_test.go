package nvm

import "testing"

// tornPop forges the durable state a crash leaves when it hits Alloc's
// free-list pop after the head unlink persisted but before the Reserved
// stamp did: the head block is off the list yet still stamped Free.
// The mmap simulation never loses unflushed stores, so the state is
// constructed directly instead of via crash injection.
func tornPop(h *Heap, headOff PPtr) PPtr {
	head := PPtr(h.U64(headOff))
	payload := head + blockHeaderSize
	next := h.U64(payload)
	h.SetU64(headOff, next)
	h.Persist(headOff, 8)
	return payload
}

func TestScavengeReclaimsTornFreeListPop(t *testing.T) {
	h, _ := testHeap(t, 1<<20)
	p, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	h.Free(p)

	c := classFor(64)
	victim := tornPop(h, PPtr(hdrFreeLists+uint64(c)*8))
	if victim != p {
		t.Fatalf("forged pop got %d, want %d", victim, p)
	}
	if got := h.U64(victim - blockHeaderSize + 8); got != blockFree {
		t.Fatalf("victim state = %#x, want blockFree", got)
	}

	// Nothing references the block and it is on no free list: before the
	// free-state sweep this was a permanent leak.
	n := h.Scavenge(func(yield func(PPtr)) {})
	if n != 1 {
		t.Fatalf("Scavenge reclaimed %d, want 1", n)
	}
	again, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if again != victim {
		t.Fatalf("reclaimed block not reused: got %d want %d", again, victim)
	}
}

func TestScavengeReclaimsTornLargePop(t *testing.T) {
	h, _ := testHeap(t, 4<<20)
	const want = 40000 // beyond the largest size class
	p, err := h.Alloc(want)
	if err != nil {
		t.Fatal(err)
	}
	h.Free(p)

	victim := tornPop(h, PPtr(hdrLargeFree))
	if victim != p {
		t.Fatalf("forged pop got %d, want %d", victim, p)
	}

	n := h.Scavenge(func(yield func(PPtr)) {})
	if n != 1 {
		t.Fatalf("Scavenge reclaimed %d, want 1", n)
	}
	again, err := h.Alloc(want)
	if err != nil {
		t.Fatal(err)
	}
	if again != victim {
		t.Fatalf("reclaimed block not reused: got %d want %d", again, victim)
	}
}

func TestScavengeKeepsLinkedFreeBlocks(t *testing.T) {
	h, _ := testHeap(t, 1<<20)
	p, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	h.Free(p) // properly linked: not stranded

	if n := h.Scavenge(func(yield func(PPtr)) {}); n != 0 {
		t.Fatalf("Scavenge reclaimed %d blocks from an intact free list", n)
	}
	again, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if again != p {
		t.Fatalf("free-list block lost: got %d want %d", again, p)
	}
}

// TestAllocPersistsReservedStamp pins the ordering fix in Alloc's
// free-list path: the Reserved stamp must be flushed before Alloc
// returns, not deferred to the caller's activation persist.
func TestAllocPersistsReservedStamp(t *testing.T) {
	h, _ := testHeap(t, 1<<20)
	p, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	h.Free(p)

	before := h.Stats().Flushes
	q, err := h.Alloc(64) // free-list hit
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Fatalf("expected free-list reuse of %d, got %d", p, q)
	}
	// Two persists: the head unlink and the Reserved stamp.
	if got := h.Stats().Flushes - before; got < 2 {
		t.Fatalf("free-list Alloc issued %d flushes, want >= 2 (head pop + Reserved stamp)", got)
	}
}
