package query

import (
	"fmt"

	"hyrisenv/internal/storage"
	"hyrisenv/internal/txn"
)

// JoinPair couples a left and a right row ID satisfying an equi-join.
type JoinPair struct {
	Left  uint64
	Right uint64
}

// HashJoin computes the inner equi-join left.leftCol = right.rightCol
// over the rows visible to tx, the standard column-store way: the build
// side hashes *dictionary keys* (so each distinct value is encoded
// once), the probe side resolves its value IDs through the same
// dictionary-aware matcher. Both Views are captured once, so the result
// is consistent under concurrent merges.
//
// The join columns must have the same type.
func HashJoin(tx *txn.Txn, left *storage.Table, leftCol int, right *storage.Table, rightCol int) ([]JoinPair, error) {
	lt := left.Schema.Cols[leftCol].Type
	rt := right.Schema.Cols[rightCol].Type
	if lt != rt {
		return nil, fmt.Errorf("query: join column types differ (%s vs %s)", lt, rt)
	}
	tx.PinEpoch(left)
	tx.PinEpoch(right)
	lv, rv := left.View(), right.View()

	// Build phase over the (usually smaller) left side: encoded value
	// key -> row IDs.
	build := make(map[string][]uint64)
	lmr := lv.MainRows()
	lv.ScanVisible(tx.SnapshotCID(), tx.TID(), func(row uint64) bool {
		if !tx.SeesIn(lv, left, row) {
			return true
		}
		var key []byte
		if row < lmr {
			mc := lv.MainColumnAt(leftCol)
			key = mc.DictKey(mc.ValueID(row))
		} else {
			dc := lv.DeltaColumnAt(leftCol)
			key = dc.DictKey(dc.ValueID(row - lmr))
		}
		build[string(key)] = append(build[string(key)], row)
		return true
	})

	// Probe phase with per-dictionary-ID memoization.
	var out []JoinPair
	rmr := rv.MainRows()
	mainHits := make(map[uint64][]uint64)  // main dict id -> left rows
	deltaHits := make(map[uint64][]uint64) // delta dict id -> left rows
	rv.ScanVisible(tx.SnapshotCID(), tx.TID(), func(row uint64) bool {
		if !tx.SeesIn(rv, right, row) {
			return true
		}
		var matches []uint64
		if row < rmr {
			mc := rv.MainColumnAt(rightCol)
			id := mc.ValueID(row)
			m, ok := mainHits[id]
			if !ok {
				m = build[string(mc.DictKey(id))]
				mainHits[id] = m
			}
			matches = m
		} else {
			dc := rv.DeltaColumnAt(rightCol)
			id := dc.ValueID(row - rmr)
			m, ok := deltaHits[id]
			if !ok {
				m = build[string(dc.DictKey(id))]
				deltaHits[id] = m
			}
			matches = m
		}
		for _, l := range matches {
			out = append(out, JoinPair{Left: l, Right: row})
		}
		return true
	})
	return out, nil
}
