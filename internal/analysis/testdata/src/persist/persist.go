// Package persist exercises the persistcheck analyzer.
package persist

import (
	"errors"

	"fix/nvm"
)

var errBoom = errors.New("boom")

var src = make([]byte, 16)

// publishDirty reproduces the publish-before-persist bug: the root is
// durably published while the block contents are still in the cache.
func publishDirty(h *nvm.Heap, p nvm.PPtr) {
	h.SetU64(p, 1)
	h.SetRoot(0, p) // want `Heap\.SetRoot publishes while the Heap\.SetU64 at .* is not persisted`
}

// publishClean is the corrected protocol: persist, then publish.
func publishClean(h *nvm.Heap, p nvm.PPtr) {
	h.SetU64(p, 1)
	h.Persist(p, 8)
	h.SetRoot(0, p)
}

// casDirty publishes through CAS with an unpersisted write pending.
func casDirty(h *nvm.Heap, p, q nvm.PPtr) {
	h.PutU64(q, 7)
	h.CasU64(p, 0, uint64(q)) // want `Heap\.CasU64 publishes while the Heap\.PutU64 at .* is not persisted`
}

// returnDirty leaks an unpersisted write out of the function.
func returnDirty(h *nvm.Heap, p nvm.PPtr) {
	h.PutU64(p, 2)
} // want `function returnDirty returns with unpersisted NVM write`

// returnDirtyExplicit does the same through an explicit return.
func returnDirtyExplicit(h *nvm.Heap, p nvm.PPtr) uint64 {
	h.PutU32(p, 3)
	return 0 // want `function returnDirtyExplicit returns with unpersisted NVM write`
}

// abortOnError must not be flagged: the error return aborts the
// construction, so the written block never becomes reachable.
func abortOnError(h *nvm.Heap, p nvm.PPtr) error {
	h.PutU64(p, 4)
	if p == 0 {
		return errBoom
	}
	h.Persist(p, 8)
	return nil
}

// copyDirty writes through a Heap.Bytes alias without a barrier.
func copyDirty(h *nvm.Heap, p nvm.PPtr) {
	b := h.Bytes(p, 16)
	copy(b, src)
} // want `function copyDirty returns with unpersisted NVM write`

// copyClean persists the written alias before returning.
func copyClean(h *nvm.Heap, p nvm.PPtr) {
	b := h.Bytes(p, 16)
	copy(b, src)
	h.PersistBytes(b)
}

// vec is a stand-in for the pstruct vectors with a deferred-persist
// write path.
type vec struct{ h *nvm.Heap }

// SetNoPersist is the stub write; the analyzer classifies calls to it
// by name, so the inert stub body needs no annotation.
func (v *vec) SetNoPersist(i, val uint64) {}

// PersistAt is the matching barrier stub.
func (v *vec) PersistAt(i uint64) {}

// stampNoPersist defers the persist without declaring it.
func stampNoPersist(v *vec) {
	v.SetNoPersist(0, 1)
} // want `function stampNoPersist returns with unpersisted NVM write`

// stampBatched declares the deferred persist with a reason.
//
//nvm:nopersist commit batches stamps and persists once per group
func stampBatched(v *vec) {
	v.SetNoPersist(0, 1)
}

// stampUnreasoned carries the annotation without the mandatory reason.
//
//nvm:nopersist
func stampUnreasoned(v *vec) { // want `//nvm:nopersist on stampUnreasoned must carry a reason`
	v.SetNoPersist(0, 1)
}

// stampSuppressed shows the generic line suppression with a reason.
func stampSuppressed(v *vec) {
	v.SetNoPersist(0, 1)
	//nvmcheck:ignore persistcheck fixture: caller persists the batch
}

// ---------------------------------------------------------------------------
// Flow-sensitive cases: v2 joins facts at merge points instead of
// scanning events in source order.

// branchyClean persists through a different barrier on each branch;
// the join at the merge point is clean on both paths.
func branchyClean(h *nvm.Heap, p nvm.PPtr, wide bool) {
	if wide {
		h.PutU64(p, 1)
		h.Persist(p, 8)
	} else {
		h.PutU32(p, 2)
		h.PersistBytes(h.Bytes(p, 4))
	}
	h.SetRoot(0, p)
}

// crossBranchDirty writes on one path and persists only on the other;
// source-order scanning (v1) saw persist-after-write and missed it.
func crossBranchDirty(h *nvm.Heap, p nvm.PPtr, fast bool) {
	if fast {
		h.PutU64(p, 1)
	} else {
		h.Persist(p, 8)
	}
	h.SetRoot(0, p) // want `Heap\.SetRoot publishes while the Heap\.PutU64 at .* is not persisted`
}

// loopPublishDirty publishes at the top of each iteration after the
// previous iteration's unpersisted write — visible only via the loop
// back edge.
func loopPublishDirty(h *nvm.Heap, p nvm.PPtr, n int) {
	for i := 0; i < n; i++ {
		h.SetRoot(0, p) // want `Heap\.SetRoot publishes while the Heap\.PutU64 at .* is not persisted`
		h.PutU64(p, uint64(i))
	}
	h.Persist(p, 8)
}

// deferPersist flushes through a deferred barrier; v1's source-order
// scan saw the defer before the write and flagged the return.
func deferPersist(h *nvm.Heap, p nvm.PPtr) {
	defer h.Persist(p, 8)
	h.PutU64(p, 1)
}

// ---------------------------------------------------------------------------
// Interprocedural cases: persist summaries over the package callgraph.

// flush is a helper barrier: every path executes a persist, so a call
// to it discharges the caller's dirty writes.
func flush(h *nvm.Heap, p nvm.PPtr) {
	h.Persist(p, 8)
}

// stampViaHelper persists through the helper; under v1 this needed a
// //nvm:nopersist annotation because the helper call was opaque.
func stampViaHelper(h *nvm.Heap, p nvm.PPtr) {
	h.PutU64(p, 1)
	flush(h, p)
}

// fill is a dirty helper: package-private with in-package callers, so
// its return-obligation transfers to the callers and it needs no
// annotation.
func fill(h *nvm.Heap, p nvm.PPtr) {
	h.PutU64(p, 1)
}

// buildClean discharges fill's writes before publishing.
func buildClean(h *nvm.Heap, p nvm.PPtr) {
	fill(h, p)
	h.Persist(p, 8)
	h.SetRoot(0, p)
}

// buildDirty publishes with fill's writes still volatile: the summary
// carries the helper's dirt to this call site.
func buildDirty(h *nvm.Heap, p nvm.PPtr) {
	fill(h, p)
	h.SetRoot(0, p) // want `Heap\.SetRoot publishes while the call of fill at .* is not persisted`
}

// SetStamp is exported and returns dirty: external callers can only
// learn the contract from the doc comment, so the annotation stays
// mandatory even under v2.
//
//nvm:nopersist commit batches stamps and persists once per group
func SetStamp(h *nvm.Heap, p nvm.PPtr, val uint64) {
	h.SetU64(p, val)
}

// SetStampUndeclared is the same exported dirty contract without the
// annotation — v2 must still require it.
func SetStampUndeclared(h *nvm.Heap, p nvm.PPtr, val uint64) {
	h.SetU64(p, val)
} // want `function SetStampUndeclared returns with unpersisted NVM write`

// stampOverDeclared carries an annotation the analysis proves inert:
// every return is clean, so the annotation is rot and is itself
// reported.
//
//nvm:nopersist stale claim, nothing stays dirty
func stampOverDeclared(h *nvm.Heap, p nvm.PPtr) { // want `//nvm:nopersist on stampOverDeclared is unnecessary`
	h.PutU64(p, 1)
	h.Persist(p, 8)
}

// poker and heapPoker give the rot report an aliased write this flow
// analysis cannot see.
type poker interface{ poke(p nvm.PPtr) }

type heapPoker struct{ h *nvm.Heap }

// poke is package-private with a static in-package caller (pokeDirect),
// so its own obligation transfers and it needs no annotation.
func (hp heapPoker) poke(p nvm.PPtr) {
	hp.h.PutU64(p, 9)
}

// pokeDirect is the static caller that discharges poke's write.
func pokeDirect(hp heapPoker, p nvm.PPtr) {
	hp.poke(p)
	hp.h.Persist(p, 8)
}

// StampDynamic stamps through the interface. The v2 flow analysis sees
// no NVM event at all (the dynamic callee is opaque to it), so on its
// own evidence the annotation is rot — but the points-to engine
// resolves the dispatch, sees the dirty return, and vetoes the
// deletion order. No diagnostic either way.
//
//nvm:nopersist callers persist the stamped batch once per group
func StampDynamic(h *nvm.Heap, p nvm.PPtr) {
	var pk poker = heapPoker{h: h}
	pk.poke(p)
}

// ---------------------------------------------------------------------------
// Flush/fence cases: the two-stage durability model of flash-backed
// NVDIMMs. Flush orders writes into the device queue; only a fence (or
// the drain, which is a fence plus device latency) makes them durable.

// flushNoFence orders the write into the queue but never fences: a
// crash can still lose it.
func flushNoFence(h *nvm.Heap, p nvm.PPtr) {
	h.SetU64(p, 1)
	h.Flush(p, 8)
} // want `function flushNoFence returns with flushed-but-unfenced NVM write`

// flushFenceClean is the explicit split-barrier protocol: flush, then
// fence — together equivalent to Persist.
func flushFenceClean(h *nvm.Heap, p nvm.PPtr) {
	h.SetU64(p, 1)
	h.Flush(p, 8)
	h.Fence()
	h.SetRoot(0, p)
}

// drainClean uses the durability drain as the fence: Drain is a fence
// with device latency, so it discharges flushed writes the same way.
func drainClean(h *nvm.Heap, p nvm.PPtr) {
	h.SetU64(p, 1)
	h.Flush(p, 8)
	h.Drain()
	h.SetRoot(0, p)
}

// fenceWithoutFlush must not launder a raw dirty write: an sfence does
// not write back unflushed cache lines.
func fenceWithoutFlush(h *nvm.Heap, p nvm.PPtr) {
	h.SetU64(p, 1)
	h.Fence()
	h.SetRoot(0, p) // want `Heap\.SetRoot publishes while the Heap\.SetU64 at .* is not persisted`
}

// flushPublishDirty publishes between the flush and the fence: the
// write is ordered but not yet durable at the publish point.
func flushPublishDirty(h *nvm.Heap, p nvm.PPtr) {
	h.SetU64(p, 1)
	h.Flush(p, 8)
	h.SetRoot(0, p) // want `Heap\.SetRoot publishes while the Heap\.SetU64 at .* is flushed but not fenced`
	h.Fence()
}

// ---------------------------------------------------------------------------
// The group-commit leader/follower pattern: followers flush their own
// writes without fencing, and the leader issues one fence for the whole
// batch. The follower's summary carries "flushed, unfenced" to the
// leader, which must discharge it.

// followerFlush is the follower: flush without fence, caller owes the
// fence. Package-private with in-package callers, so the obligation
// transfers interprocedurally — no annotation needed.
func followerFlush(h *nvm.Heap, p nvm.PPtr, cid uint64) {
	h.SetU64(p, cid)
	h.Flush(p, 8)
}

// leaderCommit fences once for every follower's flushed writes.
func leaderCommit(h *nvm.Heap, ps []nvm.PPtr) {
	for i, p := range ps {
		followerFlush(h, p, uint64(i))
	}
	h.Fence()
	if len(ps) > 0 {
		h.SetRoot(0, ps[0])
	}
}

// leaderForgetsFence batches the followers but never fences: the
// flushed writes of the whole batch are still volatile at publish.
func leaderForgetsFence(h *nvm.Heap, root nvm.PPtr, ps []nvm.PPtr) {
	for i, p := range ps {
		followerFlush(h, p, uint64(i))
	}
	h.SetRoot(0, root) // want `Heap\.SetRoot publishes while the call of followerFlush at .* is flushed but not fenced`
}
