// Package nvm simulates byte-addressable non-volatile memory for the
// Hyrise-NV storage engine.
//
// The simulated NVM device is a memory-mapped file (MAP_SHARED). Because
// the mapping is backed by the file, writes survive process restarts and
// pages are faulted in lazily, so the cost of re-opening a heap is
// independent of its size — exactly the property the paper exploits for
// instant restarts. The paper's evaluation platform emulated NVM by adding
// latency to DRAM writes; we reproduce that with a configurable latency
// model applied at persist barriers (the clflush+sfence analog).
//
// Persistent data structures refer to each other with PPtr values — byte
// offsets from the beginning of the mapping — so the heap can be mapped at
// a different virtual address on every restart.
//
// Crash consistency follows the nvm_malloc "reserve/activate" discipline:
// allocating a block only makes it *reserved*; it becomes durably reachable
// when the caller stores its PPtr into an already-reachable structure and
// persists that store. Blocks reserved at the moment of a crash are leaked
// and can be reclaimed by an offline Scavenge; the restart path never scans
// the heap.
//
// Two crash models are available. The default *optimistic* model is the
// benchmark configuration: simulated crashes (FailAfter) cut execution at
// a persist barrier but every store issued so far survives, because the
// mapping is shared with the backing file. The *pessimistic* model
// (WithShadow) additionally tracks which cache lines have actually been
// covered by a persist barrier and, on a simulated crash, discards — or
// adversarially tears — everything that has not, so recovery sees exactly
// what real hardware would guarantee. The pessimistic model is strictly
// for crash testing; it doubles memory use and adds a copy per barrier,
// so the optimistic model remains the default for benchmarks.
package nvm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

// PPtr is a persistent pointer: a byte offset from the start of the heap
// mapping. The zero value is the nil persistent pointer.
type PPtr uint64

// IsNil reports whether p is the nil persistent pointer.
func (p PPtr) IsNil() bool { return p == 0 }

// Add returns the pointer offset by n bytes.
func (p PPtr) Add(n uint64) PPtr { return p + PPtr(n) }

const (
	magic         = 0x485952_4953454e56 // "HYRISENV"-ish tag
	formatVersion = 3

	headerSize  = 4096
	rootDirOff  = headerSize
	rootSlots   = 64
	rootSlotLen = 64
	rootNameLen = 40
	rootDirSize = rootSlots * rootSlotLen

	arenaStart = rootDirOff + rootDirSize

	// blockAlign is the alignment of every allocation. 16 bytes keeps
	// uint64 fields atomically accessible.
	blockAlign = 16

	// blockHeaderSize precedes every allocation and records its size
	// class (for Free and Scavenge).
	blockHeaderSize = 16

	// CacheLineSize is the granularity of persist barriers.
	CacheLineSize = 64

	// maxGrowStep bounds one online-growth remap: below it the arena
	// doubles (amortizing remaps geometrically), above it growth proceeds
	// in maxGrowStep increments so a huge heap never doubles in one jump —
	// the same policy bbolt applies to its mmap.
	maxGrowStep = 1 << 30
)

// Header field offsets (all uint64 unless noted).
const (
	hdrMagic     = 0
	hdrVersion   = 8
	hdrSize      = 16
	hdrArenaNext = 24
	hdrEpoch     = 32
	hdrLargeFree = 40 // head of the large-block free list
	hdrFreeLists = 64 // numClasses uint64 slots
)

// Size classes for the segregated free lists. Allocations larger than the
// biggest class are carved directly from the bump arena.
var sizeClasses = [...]uint64{16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}

const numClasses = len(sizeClasses)

// Block header states.
const (
	blockFree     = 0xF4EE
	blockReserved = 0x5E5E
)

var (
	// ErrTooSmall is returned when a heap file is too small to hold the
	// header and root directory.
	ErrTooSmall = errors.New("nvm: heap size too small")
	// ErrBadMagic is returned when opening a file that is not an nvm heap.
	ErrBadMagic = errors.New("nvm: bad magic (not an nvm heap)")
	// ErrBadVersion is returned when the on-NVM format version differs.
	ErrBadVersion = errors.New("nvm: unsupported format version")
	// ErrOutOfMemory is returned when the arena is exhausted.
	ErrOutOfMemory = errors.New("nvm: out of persistent memory")
	// ErrRootSlots is returned when the root directory is full.
	ErrRootSlots = errors.New("nvm: no free root slots")
	// ErrSimulatedCrash is the panic value raised by the fail-point
	// mechanism; tests recover it to simulate a power failure.
	ErrSimulatedCrash = errors.New("nvm: simulated crash")
)

// LatencyModel configures the emulated NVM latencies, mirroring the
// DRAM-based emulation platform of the paper. WriteNS is charged per cache
// line flushed at a persist barrier; FenceNS once per barrier; ReadNS (off
// by default) can be charged explicitly by read-side code via ChargeRead.
//
// DrainNS models the durability drain of flash-backed NVDIMMs, where the
// cheap store fence (FenceNS, a core-local pipeline stall emulated as a
// busy-wait) is distinct from flushing the DIMM's write queue down to
// flash. A drain is a device-level operation: it takes at least DrainNS
// wall-clock time, the waiting core is free to run other work (emulated
// by sleeping, not spinning), and concurrent drain requests coalesce —
// one device flush cycle satisfies every requester that was already
// waiting when it began, exactly like fsync absorption on an SSD. With
// DrainNS = 0 (battery/ADR-class hardware) Drain degenerates to Fence.
type LatencyModel struct {
	WriteNS int64
	FenceNS int64
	ReadNS  int64
	DrainNS int64
}

// FaultInjector lets a fault-injection plane (internal/fault)
// intercede at the heap's allocation and persistence primitives,
// modeling device misbehavior: media/arena exhaustion, persist-latency
// spikes, and durability-drain stalls. An injector is consulted with
// one atomic load per site, so an unarmed heap pays nothing.
type FaultInjector interface {
	// AllocFault is consulted at the top of Alloc; a non-nil error
	// (which should wrap ErrOutOfMemory) fails the allocation before
	// any heap state changes.
	AllocFault(size uint64) error
	// BarrierDelay returns extra latency to charge at a fence barrier
	// (busy-wait, like the base latency model); 0 injects nothing.
	BarrierDelay() time.Duration
	// DrainDelay returns an extra stall for a durability drain
	// (sleeping, like the modeled drain cycle); 0 injects nothing.
	DrainDelay() time.Duration
}

// Stats counts persistence primitives since the heap was opened.
type Stats struct {
	Flushes   uint64 // cache lines flushed
	Fences    uint64 // persist barriers issued
	Drains    uint64 // durability drains issued (each also counts one fence)
	Allocs    uint64
	Frees     uint64
	Grows     uint64 // online growth remaps performed
	BytesUsed uint64 // high-water bump offset (excludes freed blocks)
}

// mapping is one mmap of the heap file. The heap always reads and writes
// through the current mapping; superseded mappings from before a growth
// remap stay mapped (and, being MAP_SHARED views of the same file, stay
// coherent) until Close, so slices handed out by Bytes never dangle.
type mapping struct {
	mem  []byte
	size uint64
}

// Heap is a simulated NVM heap backed by a memory-mapped file.
//
// All exported methods are safe for concurrent use unless noted.
type Heap struct {
	f *os.File

	// cur is the active mapping; maps lists every live mapping (current
	// first) so offsetOf can resolve slices minted before a growth remap.
	// Both are swapped atomically by growLocked under allocMu.
	cur  atomic.Pointer[mapping]
	maps atomic.Pointer[[][]byte]

	// growLimit caps online growth: 0 keeps the heap at its created size
	// (every bump past the end is ErrOutOfMemory, the historical
	// behavior); otherwise the arena doubles geometrically up to
	// maxGrowStep per remap until the limit is reached.
	growLimit uint64
	grows     atomic.Uint64

	lat LatencyModel

	allocMu sync.Mutex

	flushes atomic.Uint64
	fences  atomic.Uint64
	drains  atomic.Uint64
	allocs  atomic.Uint64
	frees   atomic.Uint64

	// Drain-cycle coalescing (see Drain). A cycle started while a
	// requester was already waiting covers that requester; requesters
	// arriving mid-cycle wait for the next one.
	drainMu        sync.Mutex
	drainCond      *sync.Cond
	drainRunning   bool
	drainStarted   uint64
	drainCompleted uint64

	// failAfter, when > 0, counts down on every persist barrier and
	// panics with ErrSimulatedCrash when it reaches zero.
	failAfter atomic.Int64

	// faultInj, when non-nil, is the armed fault injector (see
	// FaultInjector). Stored behind an atomic pointer so arming and
	// disarming race safely with hot-path loads.
	faultInj atomic.Pointer[FaultInjector]

	rootMu sync.Mutex

	// Pessimistic crash model (WithShadow). shadow mirrors the *durable
	// image* of the heap: a write reaches it only when a persist barrier
	// covering its cache line completes. On a simulated crash the dirty
	// lines (mem != shadow) are reverted to — or torn against — the
	// shadow before the panic unwinds. See shadow.go.
	shadowOn bool
	shadowMu sync.Mutex
	shadow   []byte
	pending  []flushRange // flushed but not yet fenced line ranges
	tearRnd  *rand.Rand
	crashed  bool
}

// Option configures a Heap at Create/Open time.
type Option func(*Heap)

// WithLatency sets the emulated NVM latency model.
func WithLatency(m LatencyModel) Option {
	return func(h *Heap) { h.lat = m }
}

// WithGrowLimit enables online heap growth up to max bytes: when a bump
// allocation does not fit, the backing file is extended geometrically
// (doubling, capped at maxGrowStep per remap) and a new mapping replaces
// the old one. Superseded mappings stay mapped until Close, so slices
// previously returned by Bytes remain valid. With the limit at 0 (the
// default) the heap stays fixed-size and exhaustion is ErrOutOfMemory.
func WithGrowLimit(max uint64) Option {
	return func(h *Heap) { h.growLimit = max }
}

// Create initializes a new heap file of the given size and maps it.
// The file must not already exist with conflicting content; an existing
// file is truncated.
func Create(path string, size uint64, opts ...Option) (*Heap, error) {
	if size < arenaStart+4096 {
		return nil, ErrTooSmall
	}
	size = alignUp(size, 4096)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("nvm: create %s: %w", path, err)
	}
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		return nil, fmt.Errorf("nvm: truncate: %w", err)
	}
	h, err := mapHeap(f, size, opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	h.putU64(hdrMagic, magic)
	h.putU64(hdrVersion, formatVersion)
	h.putU64(hdrSize, size)
	h.putU64(hdrArenaNext, arenaStart)
	h.putU64(hdrEpoch, 1)
	h.putU64(hdrLargeFree, 0)
	for c := 0; c < numClasses; c++ {
		h.putU64(hdrFreeLists+uint64(c)*8, 0)
	}
	h.Persist(0, headerSize+rootDirSize)
	return h, nil
}

// Open maps an existing heap file. Opening performs O(1) work regardless
// of heap size: only the header page is touched.
func Open(path string, opts ...Option) (*Heap, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("nvm: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("nvm: stat: %w", err)
	}
	if st.Size() < arenaStart {
		f.Close()
		return nil, ErrTooSmall
	}
	h, err := mapHeap(f, uint64(st.Size()), opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	if h.u64(hdrMagic) != magic {
		h.Close()
		return nil, ErrBadMagic
	}
	if h.u64(hdrVersion) != formatVersion {
		h.Close()
		return nil, ErrBadVersion
	}
	switch hdr := h.u64(hdrSize); {
	case hdr > uint64(st.Size()):
		h.Close()
		return nil, fmt.Errorf("nvm: header size %d > file size %d", hdr, st.Size())
	case hdr < uint64(st.Size()):
		// A crash between a growth remap's file extension and its header
		// persist leaves the file longer than the header says. The tail is
		// untouched zeros beyond the arena watermark, so adopting the
		// larger size (re-persisting the header) is always safe.
		h.putU64(hdrSize, uint64(st.Size()))
		h.Persist(hdrSize, 8)
	}
	// Bump the restart epoch so structures can detect they crossed a
	// restart (used e.g. to invalidate transient caches).
	h.putU64(hdrEpoch, h.u64(hdrEpoch)+1)
	h.Persist(hdrEpoch, 8)
	return h, nil
}

func mapHeap(f *os.File, size uint64, opts []Option) (*Heap, error) {
	mem, err := syscall.Mmap(int(f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("nvm: mmap: %w", err)
	}
	h := &Heap{f: f}
	h.cur.Store(&mapping{mem: mem, size: size})
	all := [][]byte{mem}
	h.maps.Store(&all)
	h.drainCond = sync.NewCond(&h.drainMu)
	for _, o := range opts {
		o(h)
	}
	if h.shadowOn {
		h.shadow = make([]byte, size)
		// The file contents at map time ARE the durable image. Only the
		// used prefix needs copying: bytes at or beyond arenaNext have
		// never been written (the file is created zero-filled and the
		// arena grows before any store lands), so mem and shadow already
		// agree there. On Create the header is still zero, so nothing is
		// copied and the header persist publishes it.
		used := binary.LittleEndian.Uint64(mem[hdrArenaNext:])
		if used = alignUp(used, 4096); used > size {
			used = size
		}
		copy(h.shadow[:used], mem[:used])
	}
	return h, nil
}

// m returns the current mapping.
func (h *Heap) m() *mapping { return h.cur.Load() }

// Close unmaps the heap (every mapping, including those superseded by
// growth). Data durability does not depend on a clean close.
func (h *Heap) Close() error {
	var firstErr error
	if all := h.maps.Load(); all != nil {
		h.restoreCrashImage()
		for _, mem := range *all {
			if err := syscall.Munmap(mem); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("nvm: munmap: %w", err)
			}
		}
		h.maps.Store(nil)
		h.cur.Store(nil)
	}
	if h.f != nil {
		err := h.f.Close()
		h.f = nil
		if firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Sync flushes the whole mapping to the backing file via msync. It is not
// required for the simulation (the page cache survives process exit) but
// is exposed for durability against OS crashes.
func (h *Heap) Sync() error {
	m := h.m()
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(unsafe.Pointer(&m.mem[0])), uintptr(len(m.mem)), uintptr(syscall.MS_SYNC))
	if errno != 0 {
		return fmt.Errorf("nvm: msync: %w", errno)
	}
	return nil
}

// Size returns the total heap size in bytes.
func (h *Heap) Size() uint64 { return h.m().size }

// Epoch returns the restart epoch: 1 on a fresh heap, incremented on every
// Open. Persistent structures compare a stored epoch against this to know
// whether transient state must be re-derived.
func (h *Heap) Epoch() uint64 { return h.u64(hdrEpoch) }

// Bytes returns the n bytes at p as a slice aliasing the mapping.
// The caller must ensure p..p+n lies inside the heap. The slice stays
// valid across growth remaps: superseded mappings remain mapped (and
// coherent, being MAP_SHARED views of one file) until Close.
func (h *Heap) Bytes(p PPtr, n uint64) []byte {
	return h.m().mem[p : uint64(p)+n : uint64(p)+n]
}

// U64 atomically loads the uint64 at p (which must be 8-byte aligned).
func (h *Heap) U64(p PPtr) uint64 {
	return atomic.LoadUint64(h.u64ptr(p))
}

// SetU64 atomically stores v at p (which must be 8-byte aligned). The
// store is not durable until a Persist covering p completes.
func (h *Heap) SetU64(p PPtr, v uint64) {
	atomic.StoreUint64(h.u64ptr(p), v)
}

// CasU64 performs an atomic compare-and-swap on the uint64 at p.
func (h *Heap) CasU64(p PPtr, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(h.u64ptr(p), old, new)
}

func (h *Heap) u64ptr(p PPtr) *uint64 {
	if p%8 != 0 {
		panic(fmt.Sprintf("nvm: unaligned atomic access at %d", p))
	}
	return (*uint64)(unsafe.Pointer(&h.m().mem[p]))
}

func (h *Heap) u64(off uint64) uint64       { return h.U64(PPtr(off)) }
func (h *Heap) putU64(off uint64, v uint64) { h.SetU64(PPtr(off), v) }

// alignUp rounds n up to a multiple of a (a power of two).
func alignUp(n, a uint64) uint64 { return (n + a - 1) &^ (a - 1) }

// --- Persist barriers -----------------------------------------------------

// Persist flushes the address range [p, p+n) and issues a fence — the
// analog of clflush-per-line followed by sfence. Under the latency model it
// charges WriteNS per 64-byte line plus FenceNS. It also drives the
// fail-point countdown used by crash tests.
//
// In pessimistic shadow mode the flushed lines are published to the
// durable image only after the fence's crash check passes: a crash AT
// this barrier loses (or tears) the very lines it was flushing, which is
// what real hardware guarantees — clflush completion is only ordered by
// the fence, and power can fail before it.
func (h *Heap) Persist(p PPtr, n uint64) {
	h.Flush(p, n)
	h.Fence()
}

// PersistBytes persists a slice previously obtained from Bytes.
func (h *Heap) PersistBytes(b []byte) {
	if len(b) == 0 {
		h.Fence()
		return
	}
	off := h.offsetOf(&b[0])
	h.Persist(off, uint64(len(b)))
}

// Flush flushes the cache lines covering [p, p+n) WITHOUT fencing — the
// clflushopt/clwb analog. Flushed stores are not durable until a
// subsequent Fence (or Persist) completes: in pessimistic shadow mode the
// flushed lines are queued and reach the durable image only at the next
// fence whose crash check passes. Group commit uses Flush to batch many
// lines under a single fence, amortizing the FenceNS tax across a whole
// commit group.
func (h *Heap) Flush(p PPtr, n uint64) {
	if n == 0 {
		return
	}
	first := uint64(p) &^ (CacheLineSize - 1)
	last := (uint64(p) + n - 1) &^ (CacheLineSize - 1)
	lines := (last-first)/CacheLineSize + 1
	h.flushes.Add(lines)
	if h.lat.WriteNS > 0 {
		spin(h.lat.WriteNS * int64(lines))
	}
	if h.shadow != nil {
		h.addPending(first, last+CacheLineSize)
	}
}

// FlushBytes flushes (without fencing) a slice previously obtained from
// Bytes. The no-op on an empty slice mirrors Flush, not PersistBytes: a
// flush of nothing orders nothing.
func (h *Heap) FlushBytes(b []byte) {
	if len(b) == 0 {
		return
	}
	h.Flush(h.offsetOf(&b[0]), uint64(len(b)))
}

// Fence issues a store fence (sfence analog): it orders prior flushes
// before subsequent ones and makes them durable. Under the latency model
// it charges FenceNS. In pessimistic shadow mode, line ranges queued by
// earlier Flush calls are published to the durable image only after the
// fence's crash check passes — a crash AT the fence loses everything
// flushed since the previous fence. A bare fence with no preceding flush
// publishes nothing: sfence orders flushes, it does not flush anything
// itself.
//
// The pending-flush queue is heap-global, so in shadow mode a fence on
// one goroutine publishes flushes issued on another. That is marginally
// optimistic for concurrent persist protocols, but the crash matrix
// drives workloads single-threaded, where the model is exact.
func (h *Heap) Fence() {
	h.fences.Add(1)
	if h.lat.FenceNS > 0 {
		spin(h.lat.FenceNS)
	}
	if fi := h.injector(); fi != nil {
		// Injected persist-latency spike: charged like the base latency
		// model (busy-wait), since PM tail latencies sit below timer
		// resolution just as the median does.
		if d := fi.BarrierDelay(); d > 0 {
			spin(int64(d))
		}
	}
	if n := h.failAfter.Load(); n > 0 {
		if h.failAfter.Add(-1) == 0 {
			h.applyCrash()
			panic(ErrSimulatedCrash)
		}
	}
	if h.shadow != nil {
		h.publishPending()
	}
}

// Drain issues a durability drain: the device-level barrier after which
// everything previously flushed is guaranteed to survive power loss even
// on flash-backed NVDIMMs, whose store fences order the write queue but
// do not empty it. Commit protocols use Drain at their single durability
// point (analogous to fsync after buffered writes) and plain Fence for
// the ordering barriers in between.
//
// Durability semantics are those of Fence — Drain issues one internally,
// so shadow-mode publication and the crash fail-point behave identically
// and DrainNS = 0 degenerates to exactly a fence. What DrainNS adds is
// the cost model: the caller joins the next device flush cycle, sleeping
// (not spinning — the core is free) until a full cycle of at least
// DrainNS has elapsed that began after the call. Concurrent callers
// coalesce onto one cycle, which is precisely the effect persist-group
// commit exploits: one drain per batch instead of one per transaction.
func (h *Heap) Drain() {
	h.drains.Add(1)
	if fi := h.injector(); fi != nil {
		// Injected drain stall: the device's flush cycle runs long. The
		// waiting core sleeps (it is free to run other work), exactly
		// like the modeled cycle — callers must surface the added time
		// as deadline errors, not wedged connections.
		if d := fi.DrainDelay(); d > 0 {
			time.Sleep(d)
		}
	}
	if h.lat.DrainNS > 0 {
		h.awaitDrainCycle(time.Duration(h.lat.DrainNS))
	}
	h.Fence()
}

// awaitDrainCycle blocks until a full drain cycle of length d that
// started at or after the call has completed. The first waiter with no
// cycle in flight runs the cycle itself (sleeping d, then waking the
// cohort); everyone else waits for that cycle — or, if one was already
// running when they arrived, for the one after it, since an in-flight
// cycle began before their flushes reached the device queue.
func (h *Heap) awaitDrainCycle(d time.Duration) {
	h.drainMu.Lock()
	need := h.drainStarted + 1
	for h.drainCompleted < need {
		if !h.drainRunning {
			h.drainRunning = true
			h.drainStarted++
			mine := h.drainStarted
			h.drainMu.Unlock()
			time.Sleep(d)
			h.drainMu.Lock()
			h.drainRunning = false
			h.drainCompleted = mine
			h.drainCond.Broadcast()
		} else {
			h.drainCond.Wait()
		}
	}
	h.drainMu.Unlock()
}

// ChargeRead charges the read latency model for n bytes. The storage layer
// calls this on NVM read paths when a read latency is configured.
func (h *Heap) ChargeRead(n uint64) {
	if h.lat.ReadNS > 0 && n > 0 {
		lines := (n + CacheLineSize - 1) / CacheLineSize
		spin(h.lat.ReadNS * int64(lines))
	}
}

// ReadLatencyEnabled reports whether a read latency is configured, letting
// hot paths skip the accounting entirely.
func (h *Heap) ReadLatencyEnabled() bool { return h.lat.ReadNS > 0 }

// FailAfter arms the fail-point: after n more persist barriers the heap
// panics with ErrSimulatedCrash. n <= 0 disarms it. Tests use this to cut
// power at a precise point in a persistence protocol.
func (h *Heap) FailAfter(n int64) { h.failAfter.Store(n) }

// SetFaultInjector arms (or, with nil, disarms) a fault injector on
// the heap. Alloc, Fence and Drain consult it; see FaultInjector.
func (h *Heap) SetFaultInjector(fi FaultInjector) {
	if fi == nil {
		h.faultInj.Store(nil)
		return
	}
	h.faultInj.Store(&fi)
}

// injector returns the armed fault injector, or nil.
func (h *Heap) injector() FaultInjector {
	if p := h.faultInj.Load(); p != nil {
		return *p
	}
	return nil
}

func (h *Heap) offsetOf(b *byte) PPtr {
	// A slice may have been minted from a mapping that growth has since
	// superseded; every live mapping views the same file, so the offset
	// within whichever mapping contains the pointer is the heap offset.
	addr := uintptr(unsafe.Pointer(b))
	for _, mem := range *h.maps.Load() {
		base := uintptr(unsafe.Pointer(&mem[0]))
		if addr >= base && addr < base+uintptr(len(mem)) {
			return PPtr(addr - base)
		}
	}
	panic("nvm: pointer does not alias any heap mapping")
}

// Stats returns persistence counters.
func (h *Heap) Stats() Stats {
	return Stats{
		Flushes:   h.flushes.Load(),
		Fences:    h.fences.Load(),
		Drains:    h.drains.Load(),
		Allocs:    h.allocs.Load(),
		Frees:     h.frees.Load(),
		Grows:     h.grows.Load(),
		BytesUsed: h.u64(hdrArenaNext),
	}
}

// ResetStats zeroes the persistence counters (the allocator watermark is
// unaffected).
func (h *Heap) ResetStats() {
	h.flushes.Store(0)
	h.fences.Store(0)
	h.drains.Store(0)
	h.allocs.Store(0)
	h.frees.Store(0)
}

// --- Allocation ------------------------------------------------------------

// classFor returns the index of the smallest size class >= n, or -1 when n
// exceeds the largest class.
func classFor(n uint64) int {
	for i, c := range sizeClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// Alloc reserves a block of at least n bytes and returns a pointer to its
// payload. The block is merely *reserved*: it becomes durably owned only
// once the caller persists a reachable reference to it (reserve/activate).
// The returned payload is zeroed.
func (h *Heap) Alloc(n uint64) (PPtr, error) {
	if n == 0 {
		n = 1
	}
	if fi := h.injector(); fi != nil {
		// Injected exhaustion fails before any heap state changes, so a
		// faulted Alloc is indistinguishable from a genuinely full arena.
		if err := fi.AllocFault(n); err != nil {
			return nil1(), err
		}
	}
	h.allocs.Add(1)
	c := classFor(n)
	h.allocMu.Lock()
	defer h.allocMu.Unlock()
	if c >= 0 {
		// Try the free list first.
		headOff := PPtr(hdrFreeLists + uint64(c)*8)
		if head := h.U64(headOff); head != 0 {
			next := h.U64(PPtr(head) + blockHeaderSize) // next link lives in payload
			h.SetU64(headOff, next)
			h.Persist(headOff, 8)
			p := PPtr(head)
			h.SetU64(p+8, blockReserved)
			// The stamp must be durable before the caller can activate
			// the block: a crash after the (persisted) list pop but
			// before the stamp would leave the block durably Free yet on
			// no free list, invisible to Scavenge's reserved-sweep.
			h.Persist(p+8, 8)
			payload := p + blockHeaderSize
			clear(h.Bytes(payload, sizeClasses[c]))
			return payload, nil
		}
		return h.bump(sizeClasses[c], uint64(c))
	}
	want := alignUp(n, blockAlign)
	if p, ok := h.allocLargeLocked(want); ok {
		return p, nil
	}
	return h.bump(want, uint64(numClasses)+want)
}

// allocLargeLocked takes a block from the large free list whose payload
// is at least want bytes but not wastefully bigger (first fit within 2x).
// Caller holds allocMu.
func (h *Heap) allocLargeLocked(want uint64) (PPtr, bool) {
	prevSlot := PPtr(hdrLargeFree)
	cur := PPtr(h.U64(prevSlot))
	for !cur.IsNil() {
		payload := cur + blockHeaderSize
		size := h.U64(cur) - uint64(numClasses)
		next := PPtr(h.U64(payload))
		if size >= want && size <= want*2 {
			h.SetU64(prevSlot, uint64(next))
			h.Persist(prevSlot, 8)
			h.SetU64(cur+8, blockReserved)
			// Same ordering as the class free lists: the Reserved stamp
			// must be durable before the block can be activated, or a
			// crash strands it off-list in Free state.
			h.Persist(cur+8, 8)
			clear(h.Bytes(payload, size))
			return payload, true
		}
		prevSlot = payload
		cur = next
	}
	return 0, false
}

// bump carves a block from the arena, growing the heap online first when
// a grow limit permits. classTag encodes either a size-class index
// (< numClasses) or numClasses+size for large blocks.
func (h *Heap) bump(payload uint64, classTag uint64) (PPtr, error) {
	next := h.u64(hdrArenaNext)
	total := blockHeaderSize + payload
	if next+total > h.m().size {
		if err := h.growLocked(next + total); err != nil {
			return nil1(), err
		}
	}
	// Initialize the header before advancing the watermark: a crash
	// between the two barriers then leaves the header bytes harmlessly
	// beyond the durable watermark (the next bump overwrites them),
	// whereas the reverse order would expose an uninitialized block to
	// every post-crash arena walk.
	p := PPtr(next)
	h.SetU64(p, classTag)
	h.SetU64(p+8, blockReserved)
	h.Persist(p, blockHeaderSize)
	h.putU64(hdrArenaNext, next+total)
	h.Persist(hdrArenaNext, 8)
	return p + blockHeaderSize, nil
}

func nil1() PPtr { return 0 }

// growLocked extends the heap online so that at least need bytes of arena
// exist, by the bbolt policy: double the current size until it fits,
// stepping by at most maxGrowStep per remap, clamped to the grow limit.
// Caller holds allocMu.
//
// The sequence is crash-safe: the file is extended first, then the new
// mapping installed, then the on-NVM size header persisted. A crash
// before the header persist leaves a longer file whose tail is untouched
// zeros; Open adopts it (see the size check there). The shadow durable
// image is regrown before the mapping swap so a fail-point crash during
// the header persist still finds shadow and mapping the same length, and
// the armed fault injector — attached to the Heap, not to any mapping —
// is re-verified after the swap so injected faults keep firing on the
// grown heap.
func (h *Heap) growLocked(need uint64) error {
	old := h.m()
	if h.growLimit == 0 || old.size >= h.growLimit {
		return ErrOutOfMemory
	}
	newSize := old.size
	for newSize < need {
		if newSize < maxGrowStep {
			newSize *= 2
		} else {
			newSize += maxGrowStep
		}
	}
	if newSize > h.growLimit {
		newSize = h.growLimit
	}
	newSize = alignUp(newSize, 4096)
	if newSize < need {
		return ErrOutOfMemory
	}
	if err := h.f.Truncate(int64(newSize)); err != nil {
		return fmt.Errorf("nvm: grow truncate to %d: %w", newSize, err)
	}
	mem, err := syscall.Mmap(int(h.f.Fd()), 0, int(newSize),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return fmt.Errorf("nvm: grow mmap: %w", err)
	}

	// Regrow the durable image first: applyCrash and publishPending index
	// shadow with offsets bounded by the *current* mapping's size, so the
	// shadow must never be shorter than the mapping about to be installed.
	h.shadowMu.Lock()
	if h.shadow != nil {
		grown := make([]byte, newSize)
		copy(grown, h.shadow)
		h.shadow = grown
	}
	h.shadowMu.Unlock()

	all := append([][]byte{mem}, *h.maps.Load()...)
	h.cur.Store(&mapping{mem: mem, size: newSize})
	h.maps.Store(&all)
	h.grows.Add(1)

	armed := h.injector()
	h.putU64(hdrSize, newSize)
	h.Persist(hdrSize, 8)
	if h.injector() != armed {
		// The injector lives on the Heap behind an atomic pointer, so the
		// remap cannot detach it; this guards the invariant against
		// regressions (an injector captured per-mapping would go dark
		// here, silently disarming every fault plane after first growth).
		panic("nvm: fault injector detached across growth remap")
	}
	return nil
}

// Free returns a block previously obtained from Alloc to the free list
// of its size class (or to the large-block free list — no splitting or
// coalescing is performed).
//
// Free must only be called once the block is durably unreachable;
// otherwise a crash could resurrect a recycled block.
func (h *Heap) Free(payload PPtr) {
	if payload.IsNil() {
		return
	}
	h.frees.Add(1)
	p := payload - blockHeaderSize
	tag := h.U64(p)
	h.allocMu.Lock()
	defer h.allocMu.Unlock()
	headOff := PPtr(hdrFreeLists + tag*8)
	if tag >= uint64(numClasses) {
		headOff = PPtr(hdrLargeFree)
	}
	h.SetU64(p+8, blockFree)
	h.SetU64(payload, h.U64(headOff)) // next link in payload
	h.Persist(p, blockHeaderSize+8)
	h.SetU64(headOff, uint64(p))
	h.Persist(headOff, 8)
}

// BlockSize returns the usable payload size of an allocated block.
func (h *Heap) BlockSize(payload PPtr) uint64 {
	tag := h.U64(payload - blockHeaderSize)
	if tag < uint64(numClasses) {
		return sizeClasses[tag]
	}
	return tag - uint64(numClasses)
}

// --- Root directory ---------------------------------------------------------

// rootSlot layout: name [rootNameLen]byte | ptr uint64 | aux uint64 | pad.
func (h *Heap) rootSlot(i int) PPtr { return PPtr(rootDirOff + i*rootSlotLen) }

// SetRoot durably associates name with pointer p (and an auxiliary word),
// creating or updating the named root. Named roots are the anchors from
// which all persistent structures must be reachable.
func (h *Heap) SetRoot(name string, p PPtr, aux uint64) error {
	if len(name) == 0 || len(name) > rootNameLen {
		return fmt.Errorf("nvm: invalid root name %q", name)
	}
	h.rootMu.Lock()
	defer h.rootMu.Unlock()
	free := -1
	for i := 0; i < rootSlots; i++ {
		s := h.rootSlot(i)
		cur := h.rootName(s)
		if cur == name {
			h.SetU64(s.Add(rootNameLen), uint64(p))
			h.SetU64(s.Add(rootNameLen+8), aux)
			h.Persist(s, rootSlotLen)
			return nil
		}
		if cur == "" && free < 0 {
			free = i
		}
	}
	if free < 0 {
		return ErrRootSlots
	}
	s := h.rootSlot(free)
	// Write pointer+aux first, then the name; a torn name is detected by
	// readers as "no such root" and the slot is safely overwritten later.
	h.SetU64(s.Add(rootNameLen), uint64(p))
	h.SetU64(s.Add(rootNameLen+8), aux)
	h.Persist(s.Add(rootNameLen), 16)
	nb := h.Bytes(s, rootNameLen)
	clear(nb)
	copy(nb, name)
	h.Persist(s, rootNameLen)
	return nil
}

// Root returns the pointer and auxiliary word of the named root.
// ok is false when no such root exists.
func (h *Heap) Root(name string) (p PPtr, aux uint64, ok bool) {
	h.rootMu.Lock()
	defer h.rootMu.Unlock()
	for i := 0; i < rootSlots; i++ {
		s := h.rootSlot(i)
		if h.rootName(s) == name {
			return PPtr(h.U64(s.Add(rootNameLen))), h.U64(s.Add(rootNameLen + 8)), true
		}
	}
	return 0, 0, false
}

// DeleteRoot removes the named root. Deleting a missing root is a no-op.
func (h *Heap) DeleteRoot(name string) {
	h.rootMu.Lock()
	defer h.rootMu.Unlock()
	for i := 0; i < rootSlots; i++ {
		s := h.rootSlot(i)
		if h.rootName(s) == name {
			clear(h.Bytes(s, rootNameLen))
			h.Persist(s, rootNameLen)
			return
		}
	}
}

// Roots returns the names of all live roots.
func (h *Heap) Roots() []string {
	h.rootMu.Lock()
	defer h.rootMu.Unlock()
	var names []string
	for i := 0; i < rootSlots; i++ {
		if n := h.rootName(h.rootSlot(i)); n != "" {
			names = append(names, n)
		}
	}
	return names
}

func (h *Heap) rootName(s PPtr) string {
	b := h.Bytes(s, rootNameLen)
	end := 0
	for end < len(b) && b[end] != 0 {
		end++
	}
	return string(b[:end])
}

// --- Encoding helpers --------------------------------------------------------

// PutU64 stores v little-endian at p without atomicity (bulk writes).
func (h *Heap) PutU64(p PPtr, v uint64) {
	binary.LittleEndian.PutUint64(h.m().mem[p:], v)
}

// GetU64 loads a little-endian uint64 at p without atomicity.
func (h *Heap) GetU64(p PPtr) uint64 {
	return binary.LittleEndian.Uint64(h.m().mem[p:])
}

// PutU32 stores v little-endian at p.
func (h *Heap) PutU32(p PPtr, v uint32) {
	binary.LittleEndian.PutUint32(h.m().mem[p:], v)
}

// GetU32 loads a little-endian uint32 at p.
func (h *Heap) GetU32(p PPtr) uint32 {
	return binary.LittleEndian.Uint32(h.m().mem[p:])
}
