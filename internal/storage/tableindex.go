package storage

import (
	"bytes"

	"hyrisenv/internal/index"
	"hyrisenv/internal/nvm"
	"hyrisenv/internal/pstruct"
)

// Secondary indexes. A table may index any subset of its columns
// (IndexMask bit i = column i). Each indexed column carries a group-key
// index over the main partition (rebuilt wholesale at merge) and a delta
// index updated on every insert.
//
// On the NVM backend both index forms are persistent and are part of the
// table's partition set, so they are valid immediately after restart; the
// log-based baseline rebuilds them during recovery, which is a dominant
// component of its restart time.

// mainIndex is satisfied by *index.GroupKey and *index.NVMGroupKey.
type mainIndex interface {
	Rows(id uint64, fn func(row uint64) bool)
	RowsInIDRange(lo, hi uint64, fn func(row uint64) bool)
}

// deltaIndex is satisfied by *index.VolatileDeltaIndex and
// *index.NVMDeltaIndex.
type deltaIndex interface {
	Insert(encKey []byte, row uint64) error
	Lookup(encKey []byte, fn func(row uint64) bool)
}

// IndexMask returns the bitmask of indexed columns.
func (t *Table) IndexMask() uint64 { return t.indexMask }

// Indexed reports whether column col is indexed.
func (t *Table) Indexed(col int) bool { return t.indexMask&(1<<uint(col)) != 0 }

// LookupRows yields candidate table row IDs whose column col equals
// encKey, using the group-key index for the main partition and the delta
// index for the delta partition. Candidates are value-verified and
// duplicate-suppressed (a crash can leave benign stale delta-index
// entries, including one that collides with a live posting when its
// rolled-back slot is reused under the same key) but NOT
// visibility-checked — the caller applies MVCC. ok is false when col is
// not indexed.
func (v View) LookupRows(col int, encKey []byte, fn func(row uint64) bool) (ok bool) {
	if !v.t.Indexed(col) || v.ps.deltaIdx[col] == nil {
		return false
	}
	if id, found := v.ps.main[col].LookupValueID(encKey); found {
		stop := false
		v.ps.mainIdx[col].Rows(id, func(r uint64) bool {
			if !fn(r) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return true
		}
	}
	mr := v.ps.mainMVCC.Rows()
	dRows := v.ps.deltaMVCC.Rows()
	d := v.ps.delta[col]
	var seen []uint64
	v.ps.deltaIdx[col].Lookup(encKey, func(local uint64) bool {
		if local >= dRows {
			return true // torn append truncated away; stale entry
		}
		if !bytes.Equal(d.DictKey(d.ValueID(local)), encKey) {
			return true // slot reused after truncation; stale entry
		}
		// A slot reused with the SAME key after a crash carries both the
		// stale and the live posting; value verification cannot separate
		// them, so suppress the duplicate here.
		for _, s := range seen {
			if s == local {
				return true
			}
		}
		seen = append(seen, local)
		return fn(mr + local)
	})
	return true
}

// LookupRows is the single-call convenience over the current generation.
func (t *Table) LookupRows(col int, encKey []byte, fn func(row uint64) bool) bool {
	return t.View().LookupRows(col, encKey, fn)
}

// LookupRowsInRange yields candidate rows whose column value falls in
// [loKey, hiKey): the main partition via the sorted dictionary +
// group-key index, the delta by scanning (the delta is small by design).
// Candidates are not visibility-checked. ok is false when col is not
// indexed.
func (v View) LookupRowsInRange(col int, loKey, hiKey []byte, fn func(row uint64) bool) (ok bool) {
	if !v.t.Indexed(col) || v.ps.deltaIdx[col] == nil {
		return false
	}
	lo, hi := v.ps.main[col].LookupRange(loKey, hiKey)
	stop := false
	v.ps.mainIdx[col].RowsInIDRange(lo, hi, func(r uint64) bool {
		if !fn(r) {
			stop = true
			return false
		}
		return true
	})
	if stop {
		return true
	}
	mr := v.ps.mainMVCC.Rows()
	d := v.ps.delta[col]
	n := v.ps.deltaMVCC.Rows()
	for local := uint64(0); local < n; local++ {
		k := d.DictKey(d.ValueID(local))
		if bytes.Compare(k, loKey) >= 0 && bytes.Compare(k, hiKey) < 0 {
			if !fn(mr + local) {
				return true
			}
		}
	}
	return true
}

// LookupRowsInRange is the single-call convenience over the current
// generation.
func (t *Table) LookupRowsInRange(col int, loKey, hiKey []byte, fn func(row uint64) bool) bool {
	return t.View().LookupRowsInRange(col, loKey, hiKey, fn)
}

// RebuildIndexes reconstructs all secondary indexes from column data —
// the log-based recovery path (and a repair tool for the NVM backend).
// Cost is O(rows) per indexed column. It publishes a new partition
// generation carrying the fresh indexes (columns and MVCC unchanged, so
// the epoch does not advance).
func (t *Table) RebuildIndexes() error {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	old := t.parts.Load()
	ncols := t.Schema.NumCols()
	ps := &partitions{
		main:      old.main,
		delta:     old.delta,
		mainMVCC:  old.mainMVCC,
		deltaMVCC: old.deltaMVCC,
		mainIdx:   make([]mainIndex, ncols),
		deltaIdx:  make([]deltaIndex, ncols),
	}
	for c := 0; c < ncols; c++ {
		if !t.Indexed(c) {
			continue
		}
		if t.h != nil {
			gk, err := index.BuildNVMGroupKey(t.h, ps.main[c].Rows(), ps.main[c].DictLen(), ps.main[c].ValueID)
			if err != nil {
				return err
			}
			ps.mainIdx[c] = gk
			di, err := index.NewNVMDeltaIndex(t.h)
			if err != nil {
				return err
			}
			ps.deltaIdx[c] = di
			// Publish the rebuilt roots in the persistent partition set.
			pp := t.psPtr()
			t.h.SetU64(pp.Add(psOffCols+uint64(c)*32+16), uint64(gk.Root()))
			t.h.SetU64(pp.Add(psOffCols+uint64(c)*32+24), uint64(di.Root()))
			t.h.Persist(pp.Add(psOffCols+uint64(c)*32+16), 16)
		} else {
			ps.mainIdx[c] = index.BuildGroupKey(ps.main[c].Rows(), ps.main[c].DictLen(), ps.main[c].ValueID)
			ps.deltaIdx[c] = index.NewVolatileDeltaIndex()
		}
		// Re-insert delta rows.
		d := ps.delta[c]
		n := ps.deltaMVCC.Rows()
		for local := uint64(0); local < n; local++ {
			if err := ps.deltaIdx[c].Insert(d.DictKey(d.ValueID(local)), local); err != nil {
				return err
			}
		}
	}
	t.parts.Store(ps)
	return nil
}

// nvmBlocks is implemented by the NVM index forms for scavenging.
type nvmBlocks interface {
	Blocks(yield func(nvm.PPtr))
}

// Blocks yields every heap block reachable from the table (NVM backend
// only) — the reachability input of nvm.Heap.Scavenge. The table must be
// quiescent while enumerating.
func (t *Table) Blocks(yield func(nvm.PPtr)) {
	if t.h == nil {
		return
	}
	h := t.h
	ps := t.parts.Load()
	yield(t.root)
	if sb := nvm.PPtr(h.GetU64(t.root.Add(trOffSchema))); !sb.IsNil() {
		yield(sb)
	}
	pp := t.psPtr()
	yield(pp)
	for _, mv := range []nvm.PPtr{
		nvm.PPtr(h.GetU64(pp.Add(psOffMainBegin))),
		nvm.PPtr(h.GetU64(pp.Add(psOffMainEnd))),
		nvm.PPtr(h.GetU64(pp.Add(psOffDeltaBegin))),
		nvm.PPtr(h.GetU64(pp.Add(psOffDeltaEnd))),
	} {
		pstruct.AttachVector(h, mv).Blocks(yield)
	}
	for c := 0; c < t.Schema.NumCols(); c++ {
		ps.main[c].(*NVMMain).Blocks(yield)
		ps.delta[c].(*NVMDelta).Blocks(yield)
		if t.Indexed(c) {
			if b, ok := ps.mainIdx[c].(nvmBlocks); ok {
				b.Blocks(yield)
			}
			if b, ok := ps.deltaIdx[c].(nvmBlocks); ok {
				b.Blocks(yield)
			}
		}
	}
}
