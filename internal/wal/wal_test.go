package wal

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"hyrisenv/internal/disk"
	"hyrisenv/internal/storage"
)

func testSchema(t *testing.T) storage.Schema {
	t.Helper()
	s, err := storage.NewSchema(
		storage.ColumnDef{Name: "id", Type: storage.TypeInt64},
		storage.ColumnDef{Name: "name", Type: storage.TypeString},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRecordRoundTrip(t *testing.T) {
	sch := testSchema(t)
	recs := [][]byte{
		EncodeCreateTable(3, "orders", sch, 0),
		EncodeInsert(7, 3, 12, []storage.Value{storage.Int(5), storage.Str("x")}),
		EncodeInvalidate(7, 3, 4),
		EncodeCommit(7, 99),
	}
	var buf bytes.Buffer
	for _, r := range recs {
		buf.Write(r)
	}
	var got []Op
	n, valid, err := ReadRecords(&buf, func(op Op) error { got = append(got, op); return nil })
	if err != nil || n != 4 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	total := 0
	for _, r := range recs {
		total += len(r)
	}
	if valid != uint64(total) {
		t.Fatalf("validBytes = %d, want %d", valid, total)
	}
	if got[0].Type != RecCreateTable || got[0].Name != "orders" || got[0].Table != 3 || got[0].Sch.NumCols() != 2 {
		t.Fatalf("create: %+v", got[0])
	}
	if got[1].Type != RecInsert || got[1].Txn != 7 || got[1].Row != 12 ||
		len(got[1].Vals) != 2 || got[1].Vals[0].I != 5 || got[1].Vals[1].S != "x" {
		t.Fatalf("insert: %+v", got[1])
	}
	if got[2].Type != RecInvalidate || got[2].Row != 4 {
		t.Fatalf("invalidate: %+v", got[2])
	}
	if got[3].Type != RecCommit || got[3].CID != 99 {
		t.Fatalf("commit: %+v", got[3])
	}
}

func TestReadRecordsStopsAtTornTail(t *testing.T) {
	rec := EncodeCommit(1, 2)
	full := append(append([]byte{}, rec...), rec...)
	for cut := len(rec) + 1; cut < len(full); cut++ {
		n, valid, err := ReadRecords(bytes.NewReader(full[:cut]), func(Op) error { return nil })
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if n != 1 || valid != uint64(len(rec)) {
			t.Fatalf("cut=%d: n=%d valid=%d", cut, n, valid)
		}
	}
}

func TestReadRecordsRejectsCorruptCRC(t *testing.T) {
	rec := EncodeCommit(1, 2)
	rec[len(rec)-1] ^= 0xFF // corrupt payload byte
	n, _, err := ReadRecords(bytes.NewReader(rec), func(Op) error { return nil })
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v, want clean stop", n, err)
	}
}

func TestWriterGroupCommit(t *testing.T) {
	dir := t.TempDir()
	dev, err := disk.Open(filepath.Join(dir, "log"), disk.Model{})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	w := NewWriter(dev, 0)

	const committers = 16
	var wg sync.WaitGroup
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := w.Append(EncodeCommit(uint64(i), uint64(i)))
			if err != nil {
				t.Error(err)
				return
			}
			if err := w.WaitDurable(lsn); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// All records durable and parseable.
	r := dev.SequentialReader(0)
	seen := map[uint64]bool{}
	n, _, err := ReadRecords(r, func(op Op) error { seen[op.Txn] = true; return nil })
	if err != nil || n != committers {
		t.Fatalf("n=%d err=%v", n, err)
	}
	for i := 0; i < committers; i++ {
		if !seen[uint64(i)] {
			t.Fatalf("commit %d lost", i)
		}
	}
	if fc := w.FlushCount(); fc > committers {
		t.Fatalf("flushes %d exceed commits %d", fc, committers)
	}
}

func TestWriterAppendAfterClose(t *testing.T) {
	dev, err := disk.Open(filepath.Join(t.TempDir(), "log"), disk.Model{})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	w := NewWriter(dev, 0)
	w.Close()
	if _, err := w.Append(EncodeCommit(1, 1)); err != ErrWriterClosed {
		t.Fatalf("err = %v", err)
	}
}

// buildTable commits n rows through the storage layer directly.
func buildTable(t *testing.T, id uint32, n int) *storage.Table {
	t.Helper()
	tbl := storage.NewVolatileTable("orders", id, testSchema(t), 0)
	for i := 0; i < n; i++ {
		row, err := tbl.AppendRow([]storage.Value{storage.Int(int64(i)), storage.Str("c")}, 1)
		if err != nil {
			t.Fatal(err)
		}
		tbl.StampBegin(row, 2)
		tbl.ReleaseOwner(row, 1)
	}
	return tbl
}

func TestCheckpointRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, disk.Model{})
	if err != nil {
		t.Fatal(err)
	}
	tbl := buildTable(t, 1, 100)
	w, seq, err := m.WriteCheckpoint([]*storage.Table{tbl}, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("seq = %d", seq)
	}
	w.Close()

	res, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasState || res.LastCID != 5 || res.NextTableID != 2 {
		t.Fatalf("res = %+v", res)
	}
	got := res.Tables[1]
	if got == nil || got.Rows() != 100 || got.Name != "orders" {
		t.Fatalf("table: %+v", got)
	}
	var sum int64
	got.ScanVisible(5, 0, func(row uint64) bool {
		sum += got.Value(0, row).I
		return true
	})
	if sum != 99*100/2 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestRecoverReplaysCommittedOnly(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, disk.Model{})
	if err != nil {
		t.Fatal(err)
	}
	sch := testSchema(t)
	// No checkpoint yet: everything reconstructed from the log.
	w, seq, err := m.WriteCheckpoint(nil, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = seq

	w.Append(EncodeCreateTable(1, "orders", sch, 0))
	// txn 10: rows 0,1 committed at CID 1.
	w.Append(EncodeInsert(10, 1, 0, []storage.Value{storage.Int(100), storage.Str("a")}))
	w.Append(EncodeInsert(10, 1, 1, []storage.Value{storage.Int(101), storage.Str("b")}))
	w.Append(EncodeCommit(10, 1))
	// txn 11: row 2 NEVER committed (crash before commit record).
	w.Append(EncodeInsert(11, 1, 2, []storage.Value{storage.Int(999), storage.Str("ghost")}))
	// txn 12: row 3 committed at CID 2, plus invalidation of row 0.
	w.Append(EncodeInsert(12, 1, 3, []storage.Value{storage.Int(103), storage.Str("d")}))
	w.Append(EncodeInvalidate(12, 1, 0))
	lsn, _ := w.Append(EncodeCommit(12, 2))
	if err := w.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	w.Close()

	res, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if res.LastCID != 2 {
		t.Fatalf("LastCID = %d", res.LastCID)
	}
	tbl := res.Tables[1]
	if tbl == nil {
		t.Fatal("table not recreated from log")
	}
	// Visible at CID 2: rows 1 (101) and 3 (103); row 0 invalidated,
	// row 2 uncommitted. Physical row IDs preserved (gap at 2).
	var ids []int64
	tbl.ScanVisible(2, 0, func(row uint64) bool {
		ids = append(ids, tbl.Value(0, row).I)
		return true
	})
	if len(ids) != 2 || ids[0] != 101 || ids[1] != 103 {
		t.Fatalf("visible ids = %v", ids)
	}
	if tbl.Rows() != 4 {
		t.Fatalf("Rows = %d, want 4 (gap preserved)", tbl.Rows())
	}
	// Row 0 visible at CID 1 (before invalidation).
	if !tbl.Visible(0, 1, 0) {
		t.Fatal("row 0 should be visible at CID 1")
	}
}

func TestRecoverStampsCheckpointedUncommittedRows(t *testing.T) {
	// A row whose body is in the checkpoint (begin=Inf) but whose commit
	// record is in the log must become visible after recovery.
	dir := t.TempDir()
	m, _ := NewManager(dir, disk.Model{})
	tbl := storage.NewVolatileTable("orders", 1, testSchema(t), 0)
	row, _ := tbl.AppendRow([]storage.Value{storage.Int(42), storage.Str("late")}, 9)
	w, _, err := m.WriteCheckpoint([]*storage.Table{tbl}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(EncodeInsert(9, 1, row, []storage.Value{storage.Int(42), storage.Str("late")}))
	lsn, _ := w.Append(EncodeCommit(9, 4))
	w.WaitDurable(lsn)
	w.Close()

	res, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	got := res.Tables[1]
	if !got.Visible(row, 4, 0) {
		t.Fatal("late-committed row invisible after recovery")
	}
	if got.Rows() != 1 {
		t.Fatalf("Rows = %d, want 1 (no duplicate append)", got.Rows())
	}
}

func TestRecoverFreshDatabase(t *testing.T) {
	m, _ := NewManager(t.TempDir(), disk.Model{})
	res, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if res.HasState || len(res.Tables) != 0 || res.NextTableID != 1 {
		t.Fatalf("fresh recover: %+v", res)
	}
}

func TestCheckpointRotationRemovesOldFiles(t *testing.T) {
	dir := t.TempDir()
	m, _ := NewManager(dir, disk.Model{})
	tbl := buildTable(t, 1, 10)
	w1, seq1, err := m.WriteCheckpoint([]*storage.Table{tbl}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	w1.Close()
	w2, seq2, err := m.WriteCheckpoint([]*storage.Table{tbl}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	w2.Close()
	if seq2 != seq1+1 {
		t.Fatalf("seq2 = %d", seq2)
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt-000001")); !os.IsNotExist(err) {
		t.Fatal("old checkpoint not removed")
	}
	res, err := m.Recover()
	if err != nil || res.LastCID != 2 {
		t.Fatalf("recover after rotation: cid=%d err=%v", res.LastCID, err)
	}
}

func TestOpenLogForAppendTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	m, _ := NewManager(dir, disk.Model{})
	w, seq, err := m.WriteCheckpoint(nil, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(EncodeCreateTable(1, "t", testSchema(t), 0))
	lsn, _ := w.Append(EncodeCommit(1, 1))
	w.WaitDurable(lsn)
	w.Close()
	// Simulate a torn tail by appending garbage directly.
	f, _ := os.OpenFile(filepath.Join(dir, "wal-000001.log"), os.O_APPEND|os.O_WRONLY, 0)
	f.Write([]byte{1, 2, 3})
	f.Close()

	res, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := m.OpenLogForAppend(seq, res.ValidLogBytes)
	if err != nil {
		t.Fatal(err)
	}
	lsn, _ = w2.Append(EncodeCommit(2, 2))
	w2.WaitDurable(lsn)
	w2.Close()

	res2, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if res2.LastCID != 2 {
		t.Fatalf("LastCID after torn-tail repair = %d", res2.LastCID)
	}
}

// TestOpenLogForAppendTruncatesMidLengthPrefixTear covers the nastier
// torn-tail shape: the crash cut the tail record inside its 8-byte
// length+CRC header, so the log ends with 1..7 bytes that are the real
// beginning of a record — not trailing garbage. Recovery must stop at
// the last whole record, report validBytes excluding the partial header,
// and OpenLogForAppend must truncate it so subsequent appends produce a
// log that replays cleanly.
func TestOpenLogForAppendTruncatesMidLengthPrefixTear(t *testing.T) {
	next := EncodeCommit(2, 2)
	for cut := 1; cut < 8 && cut < len(next); cut++ {
		dir := t.TempDir()
		m, _ := NewManager(dir, disk.Model{})
		w, seq, err := m.WriteCheckpoint(nil, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		w.Append(EncodeCreateTable(1, "t", testSchema(t), 0))
		lsn, _ := w.Append(EncodeCommit(1, 1))
		w.WaitDurable(lsn)
		w.Close()
		intact, err := os.Stat(filepath.Join(dir, "wal-000001.log"))
		if err != nil {
			t.Fatal(err)
		}
		// The torn tail: the first cut bytes of a real record's frame,
		// severed inside the length prefix.
		f, _ := os.OpenFile(filepath.Join(dir, "wal-000001.log"), os.O_APPEND|os.O_WRONLY, 0)
		f.Write(next[:cut])
		f.Close()

		res, err := m.Recover()
		if err != nil {
			t.Fatalf("cut=%d: recover: %v", cut, err)
		}
		if res.LastCID != 1 {
			t.Fatalf("cut=%d: LastCID = %d, want 1", cut, res.LastCID)
		}
		if res.ValidLogBytes != uint64(intact.Size()) {
			t.Fatalf("cut=%d: ValidLogBytes = %d, want %d (partial header must not count)",
				cut, res.ValidLogBytes, intact.Size())
		}
		w2, err := m.OpenLogForAppend(seq, res.ValidLogBytes)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		lsn, _ = w2.Append(EncodeCommit(2, 2))
		w2.WaitDurable(lsn)
		w2.Close()

		res2, err := m.Recover()
		if err != nil {
			t.Fatalf("cut=%d: recover after repair: %v", cut, err)
		}
		if res2.LastCID != 2 {
			t.Fatalf("cut=%d: LastCID after repair = %d, want 2", cut, res2.LastCID)
		}
	}
}

func TestReplayRowMismatchDetected(t *testing.T) {
	dir := t.TempDir()
	m, _ := NewManager(dir, disk.Model{})
	w, _, _ := m.WriteCheckpoint(nil, 0, 1)
	w.Append(EncodeCreateTable(1, "t", testSchema(t), 0))
	// Invalidate of a row that never existed.
	w.Append(EncodeInvalidate(5, 1, 99))
	lsn, _ := w.Append(EncodeCommit(5, 1))
	w.WaitDurable(lsn)
	w.Close()
	if _, err := m.Recover(); err == nil {
		t.Fatal("replay of invalid row accepted")
	}
}

// ReadRecords must never panic or loop on arbitrary input; CRC framing
// turns any corruption into a clean stop or a typed error.
func TestReadRecordsRobustnessFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(0xF022))
	valid := append(append(
		EncodeCreateTable(1, "t", testSchema(t), 0),
		EncodeInsert(5, 1, 0, []storage.Value{storage.Int(1), storage.Str("a")})...),
		EncodeCommit(5, 1)...)
	for trial := 0; trial < 400; trial++ {
		buf := append([]byte{}, valid...)
		// Random mutations: flips, truncations, garbage prefixes.
		switch trial % 3 {
		case 0:
			for k := 0; k < 1+rng.Intn(8); k++ {
				buf[rng.Intn(len(buf))] ^= byte(1 + rng.Intn(255))
			}
		case 1:
			buf = buf[:rng.Intn(len(buf))]
		case 2:
			junk := make([]byte, rng.Intn(64))
			rng.Read(junk)
			buf = append(junk, buf...)
		}
		ReadRecords(bytes.NewReader(buf), func(Op) error { return nil }) // must not panic
	}
}

// Property: any sequence of valid records survives a round trip intact.
func TestRecordStreamProperty(t *testing.T) {
	sch := testSchema(t)
	f := func(ops []uint8, txn uint64, row uint64) bool {
		var buf bytes.Buffer
		var wantTypes []uint8
		for _, o := range ops {
			switch o % 4 {
			case 0:
				buf.Write(EncodeInsert(txn, 1, row, []storage.Value{storage.Int(int64(o)), storage.Str("s")}))
				wantTypes = append(wantTypes, RecInsert)
			case 1:
				buf.Write(EncodeInvalidate(txn, 1, row))
				wantTypes = append(wantTypes, RecInvalidate)
			case 2:
				buf.Write(EncodeCommit(txn, uint64(o)))
				wantTypes = append(wantTypes, RecCommit)
			case 3:
				buf.Write(EncodeCreateTable(uint32(o), "t", sch, uint64(o)))
				wantTypes = append(wantTypes, RecCreateTable)
			}
		}
		var gotTypes []uint8
		n, validBytes, err := ReadRecords(&buf, func(op Op) error {
			gotTypes = append(gotTypes, op.Type)
			return nil
		})
		if err != nil || n != len(wantTypes) || validBytes == 0 && len(wantTypes) > 0 {
			return false
		}
		for i := range wantTypes {
			if gotTypes[i] != wantTypes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Multi-table checkpoints store table dumps back to back; recovery must
// consume each table's bytes exactly (regression test: a per-table
// buffered reader used to over-read into the next table).
func TestMultiTableCheckpointRecovery(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			dir := t.TempDir()
			m, err := NewManager(dir, disk.Model{})
			if err != nil {
				t.Fatal(err)
			}
			m.SetCompression(compress)
			var tables []*storage.Table
			for id := uint32(1); id <= 4; id++ {
				tables = append(tables, buildTable(t, id, 50*int(id)))
			}
			w, _, err := m.WriteCheckpoint(tables, 9, 5)
			if err != nil {
				t.Fatal(err)
			}
			w.Close()
			res, err := m.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Tables) != 4 || res.LastCID != 9 || res.NextTableID != 5 {
				t.Fatalf("res: tables=%d cid=%d next=%d", len(res.Tables), res.LastCID, res.NextTableID)
			}
			for id := uint32(1); id <= 4; id++ {
				tbl := res.Tables[id]
				if tbl == nil {
					t.Fatalf("table %d lost", id)
				}
				var n int
				var sum int64
				tbl.ScanVisible(9, 0, func(row uint64) bool {
					n++
					sum += tbl.Value(0, row).I
					return true
				})
				want := 50 * int(id)
				if n != want || sum != int64(want)*(int64(want)-1)/2 {
					t.Fatalf("table %d: n=%d sum=%d", id, n, sum)
				}
			}
		})
	}
}

func TestCompressedCheckpointSmaller(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	tbl := buildTable(t, 1, 2000)
	plain, _ := NewManager(dir1, disk.Model{})
	w, _, err := plain.WriteCheckpoint([]*storage.Table{tbl}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	comp, _ := NewManager(dir2, disk.Model{})
	comp.SetCompression(true)
	w, _, err = comp.WriteCheckpoint([]*storage.Table{tbl}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	sizeOf := func(dir string) int64 {
		fi, err := os.Stat(filepath.Join(dir, "ckpt-000001"))
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	ps, cs := sizeOf(dir1), sizeOf(dir2)
	if cs >= ps {
		t.Fatalf("compressed %d >= plain %d", cs, ps)
	}
	// Both recover identically.
	r1, err := plain.Recover()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := comp.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Tables[1].Rows() != r2.Tables[1].Rows() {
		t.Fatal("compressed recovery differs")
	}
}
