package wire

import (
	"bytes"
	"io"
	"testing"

	"hyrisenv/internal/storage"
)

// FuzzDecodeFrame asserts the decoder's safety contract: arbitrary
// bytes never panic, never over-consume, and anything that decodes
// re-encodes to a frame the decoder accepts again. The payload codecs
// are chained behind the frame decode so corrupt payloads of every
// message type are exercised too.
func FuzzDecodeFrame(f *testing.F) {
	// Seed with valid frames of several types so the fuzzer starts from
	// the interesting part of the input space.
	seed := [][]byte{
		AppendFrame(nil, Frame{Type: TypePing, ReqID: 1}),
		AppendFrame(nil, Frame{Type: TypeHello, ReqID: 2, Payload: Hello{Version: Version}.Encode()}),
		AppendFrame(nil, Frame{Type: TypeInsert, ReqID: 3, TimeoutMs: 250, Payload: InsertReq{
			Txn: 9, Table: "orders",
			Vals: []storage.Value{storage.Int(1), storage.Str("alice"), storage.Float(2.5)},
		}.Encode()}),
		AppendFrame(nil, Frame{Type: TypeSelect, ReqID: 4, Payload: SelectReq{
			Table: "orders",
			Preds: []Pred{{Col: "id", Op: 2, Val: storage.Int(5)}},
		}.Encode()}),
		AppendFrame(nil, Frame{Type: TypeCreateTable, ReqID: 5, Payload: CreateTableReq{
			Name: "t", Cols: []ColumnDef{{Name: "id", Type: 1}}, Indexed: []string{"id"},
		}.Encode()}),
		AppendFrame(nil, Frame{Type: TypeError, ReqID: 6, Payload: ErrorResp{Code: CodeConflict, Msg: "x"}.Encode()}),
		{0x48, 0x4e, 0x56, 0x31}, // bare magic
		bytes.Repeat([]byte{0xff}, HeaderSize+4),
	}
	for _, s := range seed {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, n, err := DecodeFrame(data, 1<<20)
		if err != nil {
			return // rejected without panicking: contract satisfied
		}
		if n < HeaderSize || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}

		// Whatever decoded must survive a re-encode/re-decode cycle.
		re := AppendFrame(nil, frame)
		frame2, _, err := DecodeFrame(re, 1<<20)
		if err != nil {
			t.Fatalf("re-decode of valid frame failed: %v", err)
		}
		if frame2.Type != frame.Type || frame2.ReqID != frame.ReqID ||
			frame2.TimeoutMs != frame.TimeoutMs || !bytes.Equal(frame2.Payload, frame.Payload) {
			t.Fatalf("re-decode mismatch: %+v vs %+v", frame2, frame)
		}

		// Chain the payload codecs: they may reject, but must not panic
		// or accept trailing garbage silently.
		p := frame.Payload
		switch frame.Type {
		case TypeHello:
			DecodeHello(p) //nolint:errcheck
		case TypeHelloOK:
			DecodeHelloOK(p) //nolint:errcheck
		case TypeBegin:
			DecodeBeginReq(p) //nolint:errcheck
		case TypeBeginOK:
			DecodeBeginOK(p) //nolint:errcheck
		case TypeCommit, TypeAbort:
			DecodeTxnReq(p) //nolint:errcheck
		case TypeInsert:
			DecodeInsertReq(p) //nolint:errcheck
		case TypeUpdate:
			DecodeUpdateReq(p) //nolint:errcheck
		case TypeDelete:
			DecodeDeleteReq(p) //nolint:errcheck
		case TypeRowID:
			DecodeRowIDResp(p) //nolint:errcheck
		case TypeGetRow:
			DecodeRowReq(p) //nolint:errcheck
		case TypeRow:
			DecodeRowResp(p) //nolint:errcheck
		case TypeSelect, TypeCount:
			DecodeSelectReq(p) //nolint:errcheck
		case TypeRange:
			DecodeRangeReq(p) //nolint:errcheck
		case TypeRowIDs:
			DecodeRowIDsResp(p) //nolint:errcheck
		case TypeCountOK:
			DecodeCountResp(p) //nolint:errcheck
		case TypeCreateTable:
			DecodeCreateTableReq(p) //nolint:errcheck
		case TypeTablesOK:
			DecodeTablesResp(p) //nolint:errcheck
		case TypeStatsOK:
			DecodeStatsResp(p) //nolint:errcheck
		case TypeError:
			DecodeErrorResp(p) //nolint:errcheck
		}
	})
}

// FuzzReadFrame covers the streaming reader: arbitrary byte streams —
// including short reads at every boundary — must never panic, and any
// frame ReadFrame accepts must agree with the in-place decoder.
func FuzzReadFrame(f *testing.F) {
	f.Add(AppendFrame(nil, Frame{Type: TypePing, ReqID: 1}), 1)
	f.Add(AppendFrame(nil, Frame{Type: TypeError, ReqID: 2,
		Payload: ErrorResp{Code: CodeInternal, Msg: "boom"}.Encode()}), 3)
	f.Add(bytes.Repeat([]byte{0xff}, HeaderSize*2), 2)

	f.Fuzz(func(t *testing.T, data []byte, chunk int) {
		if chunk < 1 {
			chunk = 1
		}
		frame, err := ReadFrame(iotest(data, chunk), 1<<20)
		if err != nil {
			return // rejected without panicking: contract satisfied
		}
		ref, _, err := DecodeFrame(data, 1<<20)
		if err != nil {
			t.Fatalf("ReadFrame accepted what DecodeFrame rejects: %v", err)
		}
		if frame.Type != ref.Type || frame.ReqID != ref.ReqID ||
			frame.TimeoutMs != ref.TimeoutMs || !bytes.Equal(frame.Payload, ref.Payload) {
			t.Fatalf("stream/in-place mismatch: %+v vs %+v", frame, ref)
		}
	})
}

// iotest returns a reader delivering data in chunk-sized pieces so the
// fuzzer exercises short reads on every header and payload boundary.
func iotest(data []byte, chunk int) io.Reader {
	return &chunkReader{data: data, chunk: chunk}
}

type chunkReader struct {
	data  []byte
	chunk int
}

func (r *chunkReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := r.chunk
	if n > len(r.data) {
		n = len(r.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}
