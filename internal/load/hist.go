package load

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is sized for the full bucket() range: 32 linear
// microsecond buckets plus 32 sub-buckets for each power of two up to
// 2^63 µs.
const histBuckets = 32 + (64-histSubBits)*32

// histSubBits gives 2^5 = 32 sub-buckets per power of two, bounding the
// relative quantile error at ~3%.
const histSubBits = 5

// hist is a lock-free log-bucketed latency histogram (HDR-style:
// linear below 32 µs, then geometric with 32 sub-buckets per octave).
// Record is safe for concurrent use; quantiles are read after the run.
type hist struct {
	counts [histBuckets]atomic.Uint64
	n      atomic.Uint64
	maxUS  atomic.Uint64
}

func bucket(us uint64) int {
	if us < 1<<histSubBits {
		return int(us)
	}
	e := bits.Len64(us) - 1 // 2^e ≤ us < 2^(e+1), e ≥ histSubBits
	m := (us >> (uint(e) - histSubBits)) & (1<<histSubBits - 1)
	return 1<<histSubBits + (e-histSubBits)<<histSubBits + int(m)
}

// bucketFloor is the smallest value mapping to bucket i — the value a
// quantile reports, so quantiles under-estimate by at most one
// sub-bucket width.
func bucketFloor(i int) uint64 {
	if i < 1<<histSubBits {
		return uint64(i)
	}
	i -= 1 << histSubBits
	e := uint(i>>histSubBits) + histSubBits
	m := uint64(i & (1<<histSubBits - 1))
	return 1<<e + m<<(e-histSubBits)
}

func (h *hist) record(d time.Duration) {
	us := uint64(d / time.Microsecond)
	h.counts[bucket(us)].Add(1)
	h.n.Add(1)
	for {
		cur := h.maxUS.Load()
		if us <= cur || h.maxUS.CompareAndSwap(cur, us) {
			return
		}
	}
}

// quantile returns the q-th (0 < q ≤ 1) latency quantile.
func (h *hist) quantile(q float64) time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	target := uint64(q * float64(n))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= target {
			return time.Duration(bucketFloor(i)) * time.Microsecond
		}
	}
	return time.Duration(h.maxUS.Load()) * time.Microsecond
}

func (h *hist) max() time.Duration {
	return time.Duration(h.maxUS.Load()) * time.Microsecond
}
