package crashtest

import (
	"regexp"
	"testing"

	"hyrisenv/internal/analysis"
	"hyrisenv/internal/analysis/protocheck"
	"hyrisenv/internal/analysis/recoverycheck"
)

// TestCrashMatrix2PCSeeded is the static/dynamic cross-check: compiled
// under one of the crosscheck_* build tags (which swap in a seeded
// broken-protocol variant of a shard-package file, see `make
// crosscheck`), it proves the same bug is caught from both sides —
// the whole-program analyzers flag it without running a single
// transaction, and the 2PC crash sweep corrupts a real database with
// it. Without a tag the test skips; the regular matrices already cover
// the correct protocol.
func TestCrashMatrix2PCSeeded(t *testing.T) {
	if seededBug == "" {
		t.Skip("no crosscheck_* build tag set; nothing is seeded")
	}

	// Static side: whole-program analysis of the seeded shard package
	// must report the seeded bug.
	pkgs, err := analysis.LoadTags("../..", []string{seededBug}, "./internal/shard")
	if err != nil {
		t.Fatalf("loading seeded internal/shard: %v", err)
	}
	res, err := analysis.RunProgram(analysis.NewProgram(pkgs),
		[]*analysis.ProgramAnalyzer{protocheck.Analyzer, recoverycheck.Analyzer})
	if err != nil {
		t.Fatalf("whole-program analysis: %v", err)
	}
	want := regexp.MustCompile(seededWant)
	var static string
	for _, d := range res.Diags {
		if want.MatchString(d.Message) {
			static = d.String()
			break
		}
	}
	if static == "" {
		t.Fatalf("static side missed the seeded bug %s: no finding matches %q in %d diagnostic(s) %v",
			seededBug, seededWant, len(res.Diags), res.Diags)
	}

	// Dynamic side: the crash sweep over the same seeded protocol must
	// observe corruption at at least one crash point.
	cfg := Config2PC{Dir: t.TempDir(), Shards: 2, TearSeeds: []int64{0, 0x5eed}}
	if testing.Short() {
		cfg.MaxBarriers = 24
	}
	dyn, err := Run2PC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(dyn.Failures) == 0 {
		t.Fatalf("dynamic side missed the seeded bug %s: %d crash points, all clean (per-heap barriers %v)",
			seededBug, dyn.Points, dyn.Barriers)
	}

	t.Logf("seeded bug %s caught both ways:", seededBug)
	t.Logf("  static:  %s", static)
	t.Logf("  dynamic: %d/%d crash points corrupted, e.g. %s",
		len(dyn.Failures), dyn.Points, dyn.Failures[0])
}
