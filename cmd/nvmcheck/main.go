// Command nvmcheck runs the repo's static-analysis suite: six analyzers
// that enforce the NVM crash-consistency discipline, the concurrency
// discipline around it, and the network-protocol hygiene rules at
// compile time.
//
// Usage:
//
//	go run ./cmd/nvmcheck [-l] [-stats] [-selfcheck] [packages]
//
// With no arguments it checks ./... . Diagnostics print one per line as
// file:line:col: message [analyzer]; the exit status is 1 when any
// diagnostic survives suppression filtering. Suppress a finding with a
// reasoned comment on (or directly above) the reported line:
//
//	//nvmcheck:ignore <analyzer> <reason>
//
// persistcheck additionally honors a function-level
// //nvm:nopersist <reason> annotation for functions whose contract is
// that the caller persists — and reports the annotation itself when the
// flow analysis proves it unnecessary.
//
// -stats prints a per-analyzer table of raised findings and reasoned
// suppressions, so suppression debt stays visible. -selfcheck scans
// every package — including the analysis framework, which the regular
// run exempts — for //nvmcheck:ignore comments lacking the mandatory
// reason, and fails if any exist.
package main

import (
	"flag"
	"fmt"
	"os"

	"hyrisenv/internal/analysis"
	"hyrisenv/internal/analysis/deadlinecheck"
	"hyrisenv/internal/analysis/lockcheck"
	"hyrisenv/internal/analysis/persistcheck"
	"hyrisenv/internal/analysis/pptrcheck"
	"hyrisenv/internal/analysis/sharecheck"
	"hyrisenv/internal/analysis/wirecodecheck"
)

// Suite is the full analyzer suite, in the order findings are most
// useful to read: durability first, then concurrency, then aliasing,
// then protocol.
var Suite = []*analysis.Analyzer{
	persistcheck.Analyzer,
	lockcheck.Analyzer,
	sharecheck.Analyzer,
	pptrcheck.Analyzer,
	wirecodecheck.Analyzer,
	deadlinecheck.Analyzer,
}

func main() {
	list := flag.Bool("l", false, "list the analyzers in the suite and exit")
	stats := flag.Bool("stats", false, "print per-analyzer finding and suppression counts")
	selfcheck := flag.Bool("selfcheck", false, "fail on //nvmcheck:ignore comments without a reason, everywhere (including the analysis framework)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: nvmcheck [-l] [-stats] [-selfcheck] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range Suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvmcheck:", err)
		os.Exit(2)
	}

	if *selfcheck {
		diags := analysis.ReasonlessSuppressions(pkgs)
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "nvmcheck: %d reasonless suppression(s)\n", len(diags))
			os.Exit(1)
		}
		return
	}

	// The analysis framework and its fixtures exercise the rules
	// deliberately; checking them would flag the fixture bugs.
	var targets []*analysis.Package
	for _, p := range pkgs {
		if isAnalysisPath(p.PkgPath) {
			continue
		}
		targets = append(targets, p)
	}
	res, err := analysis.RunDetailed(targets, Suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvmcheck:", err)
		os.Exit(2)
	}
	for _, d := range res.Diags {
		fmt.Println(d)
	}
	if *stats {
		fmt.Printf("%-14s %9s %10s\n", "analyzer", "findings", "suppressed")
		for _, a := range Suite {
			fmt.Printf("%-14s %9d %10d\n", a.Name, res.Raw[a.Name], res.Suppressed[a.Name])
		}
	}
	if len(res.Diags) > 0 {
		fmt.Fprintf(os.Stderr, "nvmcheck: %d finding(s)\n", len(res.Diags))
		os.Exit(1)
	}
}

// isAnalysisPath reports whether pkgPath belongs to the analysis suite
// itself (framework, analyzers, or this command).
func isAnalysisPath(pkgPath string) bool {
	const (
		pkg = "hyrisenv/internal/analysis"
		cmd = "hyrisenv/cmd/nvmcheck"
	)
	return pkgPath == pkg || pkgPath == cmd ||
		len(pkgPath) > len(pkg) && pkgPath[:len(pkg)+1] == pkg+"/"
}
