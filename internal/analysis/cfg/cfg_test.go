package cfg

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// build parses src as the body of a function and returns its graph.
func build(t *testing.T, body string) (*Graph, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := f.Decls[0].(*ast.FuncDecl)
	return New(fn.Body), fset
}

// golden asserts the formatted graph matches want (both trimmed).
func golden(t *testing.T, body, want string) {
	t.Helper()
	g, fset := build(t, body)
	got := strings.TrimSpace(g.Format(fset))
	want = strings.TrimSpace(want)
	if got != want {
		t.Errorf("graph mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	checkInvariants(t, g)
}

// checkInvariants asserts the structural invariants every finished
// graph must satisfy: all blocks reachable from Entry (bar Exit),
// consistent pred/succ lists, and a well-formed dominator tree.
func checkInvariants(t *testing.T, g *Graph) {
	t.Helper()
	reach := map[*Block]bool{g.Entry: true}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}
	for _, b := range g.Blocks {
		if b != g.Exit && !reach[b] {
			t.Errorf("block b%d (%s) unreachable from entry", b.Index, b.Kind)
		}
		for _, s := range b.Succs {
			found := false
			for _, p := range s.Preds {
				if p == b {
					found = true
				}
			}
			if !found {
				t.Errorf("edge b%d->b%d missing from preds", b.Index, s.Index)
			}
		}
	}
	// The idom relation must be acyclic: walking idom pointers from any
	// block terminates at Entry.
	idom := g.Dominators()
	for b := range idom {
		seen := map[*Block]bool{}
		cur := b
		for cur != g.Entry {
			if seen[cur] {
				t.Fatalf("idom cycle at b%d", cur.Index)
			}
			seen[cur] = true
			next, ok := idom[cur]
			if !ok {
				t.Fatalf("b%d has no idom and is not entry", cur.Index)
			}
			cur = next
		}
	}
}

func TestIfElseShortCircuit(t *testing.T) {
	golden(t, `
if a() && b() {
	x()
} else {
	y()
}
z()`, `
b0 entry -> b4 b3
	a()
b1 if.then -> b2
	x()
b2 if.done -> b5
	z()
	return
b3 if.else -> b2
	y()
b4 cond.and -> b1 b3
	b()
b5 exit
`)
}

func TestOrNotCondition(t *testing.T) {
	golden(t, `
if !a() || b() {
	x()
}`, `
b0 entry -> b3 b1
	a()
b1 if.then -> b2
	x()
b2 if.done -> b4
	return
b3 cond.or -> b1 b2
	b()
b4 exit
`)
}

func TestForBreakContinue(t *testing.T) {
	golden(t, `
for i := 0; i < n; i++ {
	if skip() {
		continue
	}
	if stop() {
		break
	}
	work()
}
done()`, `
b0 entry -> b1
	i := 0
b1 for.head -> b2 b3
	i < n
b2 for.body -> b5 b6
	skip()
b3 for.done -> b9
	done()
	return
b4 for.post -> b1
	i++
b5 if.then -> b4
	continue
b6 if.done -> b7 b8
	stop()
b7 if.then -> b3
	break
b8 if.done -> b4
	work()
b9 exit
`)
}

func TestLabeledBreakContinue(t *testing.T) {
	golden(t, `
outer:
for {
	for j := range xs {
		if a() {
			continue outer
		}
		if b() {
			break outer
		}
		use(j)
	}
}
end()`, `
b0 entry -> b1
b1 label.outer -> b2
b2 for.head -> b3
b3 for.body -> b5
	xs
b4 for.done -> b12
	end()
	return
b5 range.head -> b6 b7
b6 range.body -> b8 b9
	a()
b7 range.done -> b2
b8 if.then -> b2
	continue outer
b9 if.done -> b10 b11
	b()
b10 if.then -> b4
	break outer
b11 if.done -> b5
	use(j)
b12 exit
`)
}

func TestSwitchFallthroughDefault(t *testing.T) {
	golden(t, `
switch tag() {
case 1:
	one()
	fallthrough
case 2:
	two()
default:
	other()
}
after()`, `
b0 entry -> b2 b3 b4
	tag()
b1 switch.done -> b5
	after()
	return
b2 switch.case -> b3
	1
	one()
	fallthrough
b3 switch.case -> b1
	2
	two()
b4 switch.default -> b1
	other()
b5 exit
`)
}

func TestSwitchNoDefaultBypass(t *testing.T) {
	golden(t, `
switch x {
case 1:
	one()
}
after()`, `
b0 entry -> b2 b1
	x
b1 switch.done -> b3
	after()
	return
b2 switch.case -> b1
	1
	one()
b3 exit
`)
}

func TestSelect(t *testing.T) {
	golden(t, `
select {
case v := <-ch:
	use(v)
case out <- 1:
	sent()
}
after()`, `
b0 entry -> b2 b3
b1 select.done -> b4
	after()
	return
b2 select.comm -> b1
	v := <-ch
	use(v)
b3 select.comm -> b1
	out <- 1
	sent()
b4 exit
`)
}

func TestSelectNoCasesBlocksForever(t *testing.T) {
	g, _ := build(t, `
x()
select {}
never()`)
	checkInvariants(t, g)
	// Code after select{} must be unreachable: no path reaches exit.
	if len(g.Exit.Preds) != 0 {
		t.Errorf("exit has %d preds, want 0 (select{} never proceeds)", len(g.Exit.Preds))
	}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if strings.Contains(fmt.Sprint(n), "never") {
				t.Errorf("unreachable call retained in reachable block b%d", b.Index)
			}
		}
	}
}

func TestGotoForwardAndBackward(t *testing.T) {
	golden(t, `
start:
	a()
	if c() {
		goto end
	}
	b()
	goto start
end:
	z()`, `
b0 entry -> b1
b1 label.start -> b2 b3
	a()
	c()
b2 if.then -> b4
	goto end
b3 if.done -> b1
	b()
	goto start
b4 label.end -> b5
	z()
	return
b5 exit
`)
}

func TestDeferRecordedAndReturn(t *testing.T) {
	g, _ := build(t, `
defer cleanup()
if c {
	return
}
work()`)
	checkInvariants(t, g)
	if len(g.Defers) != 1 {
		t.Fatalf("got %d defers, want 1", len(g.Defers))
	}
	// Both the explicit return and the implicit fall-off-the-end return
	// must edge to exit.
	if len(g.Exit.Preds) != 2 {
		t.Errorf("exit has %d preds, want 2", len(g.Exit.Preds))
	}
	// Every path into exit ends in a ReturnStmt node.
	for _, p := range g.Exit.Preds {
		if len(p.Nodes) == 0 {
			t.Fatalf("exit pred b%d has no nodes", p.Index)
		}
		if _, ok := p.Nodes[len(p.Nodes)-1].(*ast.ReturnStmt); !ok {
			t.Errorf("exit pred b%d does not end in a return", p.Index)
		}
	}
}

func TestPanicTerminatesPath(t *testing.T) {
	g, _ := build(t, `
if bad {
	panic("boom")
}
ok()`)
	checkInvariants(t, g)
	// The panic path must not reach exit: only the fall-through return.
	if len(g.Exit.Preds) != 1 {
		t.Errorf("exit has %d preds, want 1 (panic is not a return)", len(g.Exit.Preds))
	}
}

func TestRangeLoop(t *testing.T) {
	golden(t, `
for _, v := range items() {
	use(v)
}`, `
b0 entry -> b1
	items()
b1 range.head -> b2 b3
b2 range.body -> b1
	use(v)
b3 range.done -> b4
	return
b4 exit
`)
}

func TestTypeSwitch(t *testing.T) {
	g, _ := build(t, `
switch v := x.(type) {
case int:
	useInt(v)
case string:
	useString(v)
}
after()`)
	checkInvariants(t, g)
	// Each case block starts with the assign node.
	cases := 0
	for _, b := range g.Blocks {
		if b.Kind == "switch.case" {
			cases++
			if len(b.Nodes) == 0 {
				t.Fatalf("case block b%d empty", b.Index)
			}
			if _, ok := b.Nodes[0].(*ast.AssignStmt); !ok {
				t.Errorf("case block b%d does not start with the type-switch assign", b.Index)
			}
		}
	}
	if cases != 2 {
		t.Errorf("got %d case blocks, want 2", cases)
	}
}

func TestInfiniteLoopExitUnreachable(t *testing.T) {
	g, _ := build(t, `
for {
	spin()
}`)
	checkInvariants(t, g)
	if len(g.Exit.Preds) != 0 {
		t.Errorf("exit reachable out of an infinite loop")
	}
}
