package storage

import (
	"errors"

	"hyrisenv/internal/index"
	"hyrisenv/internal/mvcc"
	"hyrisenv/internal/vec"
)

// ErrMergeBusy is returned when a merge is attempted while transactions
// still own rows of the table.
var ErrMergeBusy = errors.New("storage: merge requires a quiesced table (rows still owned by live transactions)")

// MergeStats summarizes a completed delta→main merge.
type MergeStats struct {
	RowsBefore  uint64 // main + delta rows before (including dead)
	RowsAfter   uint64 // main rows after (all visible)
	DeadDropped uint64
	DictEntries uint64 // sum of new main dictionary sizes
}

// Merge compacts the table: all rows visible at snapCID move into a new
// sorted-dictionary, bit-packed main partition; dead versions are
// dropped; the delta is reset. The caller must guarantee no transaction
// owns rows of the table (Merge verifies this) and that no commits run
// concurrently (the engine blocks them); concurrent *readers* are fine —
// they keep reading the superseded generation through their Views.
//
// The merge advances the table Epoch: row IDs obtained before the merge
// must not be used for writes afterwards (the transaction layer enforces
// this via the epoch guard).
//
// On the NVM backend the new partition set is built and persisted
// completely before the table root's single partition-set pointer is
// swapped, so a crash at any point leaves either the old or the new
// partition set — never a mix. Superseded structures are leaked and can
// be reclaimed offline (nvm.Heap.Scavenge).
func (t *Table) Merge(snapCID uint64) (MergeStats, error) {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	ps := t.parts.Load()

	var stats MergeStats
	mr, dr := ps.mainMVCC.Rows(), ps.deltaMVCC.Rows()
	stats.RowsBefore = mr + dr

	// Quiescence check: no row may be owned.
	for r := uint64(0); r < dr; r++ {
		if ps.deltaMVCC.TID(r) != 0 {
			return stats, ErrMergeBusy
		}
	}
	for r := uint64(0); r < mr; r++ {
		if ps.mainMVCC.TID(r) != 0 {
			return stats, ErrMergeBusy
		}
	}

	// Collect visible rows with their begin CIDs preserved.
	type src struct {
		inMain bool
		row    uint64
	}
	var rows []src
	var begins []uint64
	for r := uint64(0); r < mr; r++ {
		if ps.mainMVCC.Visible(r, snapCID, 0) {
			rows = append(rows, src{true, r})
			begins = append(begins, ps.mainMVCC.Begin(r))
		}
	}
	for r := uint64(0); r < dr; r++ {
		if ps.deltaMVCC.Visible(r, snapCID, 0) {
			rows = append(rows, src{false, r})
			begins = append(begins, ps.deltaMVCC.Begin(r))
		}
	}
	stats.RowsAfter = uint64(len(rows))
	stats.DeadDropped = stats.RowsBefore - stats.RowsAfter

	// Materialize encoded keys per column.
	ncols := t.Schema.NumCols()
	colKeys := make([][][]byte, ncols)
	for c := 0; c < ncols; c++ {
		keys := make([][]byte, len(rows))
		for i, s := range rows {
			if s.inMain {
				keys[i] = ps.main[c].DictKey(ps.main[c].ValueID(s.row))
			} else {
				keys[i] = ps.delta[c].DictKey(ps.delta[c].ValueID(s.row))
			}
		}
		colKeys[c] = keys
	}

	var newPS *partitions
	var err error
	if t.h != nil {
		newPS, err = t.mergeNVM(colKeys, begins, &stats)
	} else {
		newPS, err = t.mergeVolatile(colKeys, begins, &stats)
	}
	if err != nil {
		return stats, err
	}
	t.parts.Store(newPS)
	t.epoch.Add(1)
	return stats, nil
}

func (t *Table) mergeVolatile(colKeys [][][]byte, begins []uint64, stats *MergeStats) (*partitions, error) {
	ncols := t.Schema.NumCols()
	ps := &partitions{
		mainIdx:  make([]mainIndex, ncols),
		deltaIdx: make([]deltaIndex, ncols),
	}
	for c := 0; c < ncols; c++ {
		m := BuildVolatileMain(t.Schema.Cols[c].Type, colKeys[c])
		ps.main = append(ps.main, m)
		ps.delta = append(ps.delta, NewVolatileDelta(t.Schema.Cols[c].Type))
		stats.DictEntries += m.DictLen()
		if t.Indexed(c) {
			ps.mainIdx[c] = index.BuildGroupKey(m.Rows(), m.DictLen(), m.ValueID)
			ps.deltaIdx[c] = index.NewVolatileDeltaIndex()
		}
	}
	mainMVCC, err := buildVolatileMainMVCC(begins)
	if err != nil {
		return nil, err
	}
	ps.mainMVCC = mainMVCC
	ps.deltaMVCC = newVolatileStore()
	return ps, nil
}

func (t *Table) mergeNVM(colKeys [][][]byte, begins []uint64, stats *MergeStats) (*partitions, error) {
	h := t.h
	ncols := t.Schema.NumCols()
	newMain := make([]*NVMMain, ncols)
	for c := 0; c < ncols; c++ {
		m, err := BuildNVMMain(h, t.Schema.Cols[c].Type, colKeys[c])
		if err != nil {
			return nil, err
		}
		newMain[c] = m
		stats.DictEntries += m.DictLen()
	}
	psPtr, err := t.buildNVMPartitionSet(newMain, begins)
	if err != nil {
		return nil, err
	}
	// Atomic, durable swap of the partition-set pointer.
	slot := t.root.Add(trOffPS)
	h.SetU64(slot, uint64(psPtr))
	h.Persist(slot, 8)
	return t.attachPartitionSet(psPtr), nil
}

func newVolatileStore() *mvcc.Store {
	return mvcc.NewStore(vec.NewVolatile(10), vec.NewVolatile(10))
}

func buildVolatileMainMVCC(begins []uint64) (*mvcc.Store, error) {
	b, e := vec.NewVolatile(10), vec.NewVolatile(10)
	if _, err := b.AppendN(begins); err != nil {
		return nil, err
	}
	ends := make([]uint64, len(begins))
	for i := range ends {
		ends[i] = mvcc.Inf
	}
	if _, err := e.AppendN(ends); err != nil {
		return nil, err
	}
	return mvcc.NewStore(b, e), nil
}
