// Package vec abstracts the growable integer vectors the storage engine
// is built from, so the same column and MVCC code can run on a volatile
// DRAM backend (the log-based baseline) or on the persistent NVM backend
// (Hyrise-NV). The NVM implementation is pstruct.Vector; this package
// provides the interface and the volatile twin.
package vec

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Vec is a growable vector of unsigned integers with single-writer,
// multi-reader semantics. The persistence-related methods (Set vs
// SetNoPersist/PersistAt) are meaningful on the NVM implementation and
// cheap no-ops on the volatile one.
//
// *pstruct.Vector satisfies Vec.
type Vec interface {
	Len() uint64
	Append(v uint64) (uint64, error)
	AppendN(vs []uint64) (uint64, error)
	Get(i uint64) uint64
	Set(i uint64, v uint64)
	SetNoPersist(i uint64, v uint64)
	PersistAt(i uint64)
	// FlushAt flushes element i's cache line without a fence; the caller
	// fences once for a whole batch (persist-group commit).
	FlushAt(i uint64)
	Scan(fn func(i uint64, v uint64) bool)
	// Truncate drops elements at index >= n (n must not exceed Len).
	// Recovery uses it to discard torn appends.
	Truncate(n uint64)
}

const volMaxSegs = 56

// Volatile is the DRAM implementation of Vec: segmented storage with
// doubling segments, so element addresses are stable and readers may run
// concurrently with the single writer (the length word is the
// happens-before edge, as in the NVM twin).
type Volatile struct {
	baseLog uint64
	length  atomic.Uint64
	segs    [volMaxSegs]atomic.Pointer[[]uint64]
}

// NewVolatile returns an empty volatile vector whose first segment holds
// 1<<baseLog elements.
func NewVolatile(baseLog uint64) *Volatile {
	if baseLog == 0 {
		baseLog = 10
	}
	return &Volatile{baseLog: baseLog}
}

var _ Vec = (*Volatile)(nil)

func (v *Volatile) locate(i uint64) (int, uint64) {
	base := uint64(1) << v.baseLog
	k := bits.Len64(i/base+1) - 1
	before := base * ((uint64(1) << k) - 1)
	return k, i - before
}

func (v *Volatile) segCap(k int) uint64 { return (uint64(1) << v.baseLog) << k }

func (v *Volatile) ensureSeg(k int) error {
	if v.segs[k].Load() != nil {
		return nil
	}
	if k >= volMaxSegs {
		return fmt.Errorf("vec: vector exceeds max capacity")
	}
	s := make([]uint64, v.segCap(k))
	v.segs[k].Store(&s)
	return nil
}

// Len returns the number of published elements.
func (v *Volatile) Len() uint64 { return v.length.Load() }

// Append appends one element and returns its index.
func (v *Volatile) Append(val uint64) (uint64, error) {
	i := v.length.Load()
	k, off := v.locate(i)
	if err := v.ensureSeg(k); err != nil {
		return 0, err
	}
	(*v.segs[k].Load())[off] = val
	v.length.Store(i + 1)
	return i, nil
}

// AppendN appends vals and returns the index of the first.
func (v *Volatile) AppendN(vals []uint64) (uint64, error) {
	first := v.length.Load()
	i := first
	rem := vals
	for len(rem) > 0 {
		k, off := v.locate(i)
		if err := v.ensureSeg(k); err != nil {
			return 0, err
		}
		n := v.segCap(k) - off
		if n > uint64(len(rem)) {
			n = uint64(len(rem))
		}
		copy((*v.segs[k].Load())[off:off+n], rem[:n])
		rem = rem[n:]
		i += n
	}
	v.length.Store(i)
	return first, nil
}

// Get returns element i; it panics when i is out of range.
func (v *Volatile) Get(i uint64) uint64 {
	if i >= v.Len() {
		panic(fmt.Sprintf("vec: index %d out of range %d", i, v.Len()))
	}
	k, off := v.locate(i)
	return atomic.LoadUint64(&(*v.segs[k].Load())[off])
}

// Set overwrites element i.
func (v *Volatile) Set(i uint64, val uint64) {
	if i >= v.Len() {
		panic(fmt.Sprintf("vec: index %d out of range %d", i, v.Len()))
	}
	k, off := v.locate(i)
	atomic.StoreUint64(&(*v.segs[k].Load())[off], val)
}

// SetNoPersist is identical to Set on the volatile backend.
func (v *Volatile) SetNoPersist(i uint64, val uint64) { v.Set(i, val) }

// CompareAndSwap atomically replaces element i if it equals old. The MVCC
// layer uses this to claim rows for invalidation (write locks).
func (v *Volatile) CompareAndSwap(i uint64, old, new uint64) bool {
	if i >= v.Len() {
		panic(fmt.Sprintf("vec: index %d out of range %d", i, v.Len()))
	}
	k, off := v.locate(i)
	return atomic.CompareAndSwapUint64(&(*v.segs[k].Load())[off], old, new)
}

// PersistAt is a no-op on the volatile backend.
func (v *Volatile) PersistAt(uint64) {}

// FlushAt is a no-op on the volatile backend.
func (v *Volatile) FlushAt(uint64) {}

// Truncate drops elements at index >= n.
func (v *Volatile) Truncate(n uint64) {
	if n > v.Len() {
		panic(fmt.Sprintf("vec: truncate %d beyond length %d", n, v.Len()))
	}
	v.length.Store(n)
}

// Scan calls fn for each element in [0, Len()).
func (v *Volatile) Scan(fn func(i uint64, val uint64) bool) {
	n := v.Len()
	for i := uint64(0); i < n; {
		k, off := v.locate(i)
		seg := *v.segs[k].Load()
		segN := v.segCap(k) - off
		if segN > n-i {
			segN = n - i
		}
		for j := uint64(0); j < segN; j++ {
			if !fn(i, atomic.LoadUint64(&seg[off+j])) {
				return
			}
			i++
		}
	}
}
